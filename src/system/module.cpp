#include "system/module.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "ipc/payload.hpp"
#include "model/validation.hpp"
#include "pos/generic_kernel.hpp"
#include "pos/rt_kernel.hpp"
#include "system/build_info.hpp"
#include "system/executor.hpp"
#include "util/assert.hpp"

namespace air::system {

using util::EventKind;

namespace {

std::unique_ptr<pos::IKernel> make_kernel(const std::string& kind) {
  if (kind == "generic") return std::make_unique<pos::GenericKernel>();
  AIR_ASSERT_MSG(kind == "rt", "unknown POS kind (use \"rt\" or \"generic\")");
  return std::make_unique<pos::RtKernel>();
}

}  // namespace

Module::Module(ModuleConfig config)
    : config_(std::move(config)),
      machine_(config_.memory_bytes),
      spatial_(machine_) {
  time_warp_ = config_.time_warp;
  // Arena wiring first: boot-time events recorded later in this ctor must
  // already intern their labels into the module-owned arena.
  trace_.set_arena(&arena_);
  spans_.set_arena(&arena_);
  trace_.enable(config_.trace_enabled);
  metrics_.enable(config_.telemetry.metrics_enabled);
  profiler_.enable(config_.telemetry.profiler_enabled);
  profiler_.set_stride(config_.telemetry.profiler_stride);
  profiler_.set_arena_probe(&arena_);
  profiler_.set_heap_probe(
      [] { return ipc::Payload::pool_stats().heap_allocs; });
  if (config_.telemetry.flight_recorder_capacity > 0) {
    trace_.set_flight_recorder(
        config_.telemetry.flight_recorder_capacity,
        config_.telemetry.flight_recorder_critical_capacity);
  }
  spans_.enable(config_.telemetry.spans_enabled);
  spans_.set_origin(static_cast<std::uint32_t>(config_.id.value()));
  spans_.set_capacity(config_.telemetry.spans_capacity);
  if (config_.telemetry.spans_enabled && config_.trace_enabled) {
    // Mirror retirements into the trace as debug kSpan events: the flight
    // recorder shows span activity in context, and severity routing keeps
    // the flood away from the critical ring.
    spans_.set_trace(&trace_);
  }
  if (config_.telemetry.online.enabled && config_.telemetry.metrics_enabled) {
    online_ = std::make_unique<telemetry::OnlinePlane>(
        config_.telemetry.online, config_.name, config_.partitions.size());
    if (config_.trace_enabled) online_->set_trace(&trace_);
    if (config_.telemetry.spans_enabled) online_->set_spans(&spans_);
  }
  AIR_ASSERT_MSG(!config_.partitions.empty(), "module has no partitions");

  // Normalise to the multicore representation: a single-core module is a
  // one-entry core list built from the legacy fields.
  if (config_.cores.empty()) {
    AIR_ASSERT_MSG(!config_.schedules.empty(), "module has no schedules");
    config_.cores.push_back({config_.schedules, config_.initial_schedule});
  }

  // Offline verification of the integrator-defined parameters (Sect. 3),
  // plus the multicore affinity rule: a partition is scheduled by exactly
  // one core (parallel windows of *different* partitions only).
  std::map<PartitionId, std::size_t> affinity;
  for (std::size_t core = 0; core < config_.cores.size(); ++core) {
    for (const auto& schedule : config_.cores[core].schedules) {
      if (config_.validate) {
        const model::ValidationReport report =
            model::validate_schedule(schedule);
        if (!report.ok()) {
          throw std::invalid_argument("invalid schedule " + schedule.name +
                                      ":\n" + report.to_text());
        }
      }
      for (const auto& req : schedule.requirements) {
        auto [it, inserted] = affinity.emplace(req.partition, core);
        if (!inserted && it->second != core) {
          throw std::invalid_argument(
              "partition " + std::to_string(req.partition.value()) +
              " is scheduled on two cores");
        }
      }
    }
  }

  // PMK partition table + spatial separation setup.
  pcbs_.reserve(config_.partitions.size());
  core_affinity_.resize(config_.partitions.size(), 0);
  for (std::size_t i = 0; i < config_.partitions.size(); ++i) {
    const PartitionConfig& pc = config_.partitions[i];
    pmk::PartitionControlBlock pcb;
    pcb.id = PartitionId{static_cast<std::int32_t>(i)};
    pcb.name = pc.name;
    pcb.system_partition = pc.system_partition;
    pcb.last_tick = -1;
    pcb.mmu_context = spatial_.setup_partition(pcb.id, pc.memory).context;
    auto it = affinity.find(pcb.id);
    if (it != affinity.end()) core_affinity_[i] = it->second;
    pcbs_.push_back(std::move(pcb));
  }

  // One scheduler + dispatcher pair per core, with the core's PSTs
  // compiled and installed.
  cores_.reserve(config_.cores.size());
  for (const CoreConfig& core_config : config_.cores) {
    Core& core = cores_.emplace_back();
    for (const auto& schedule : core_config.schedules) {
      std::map<PartitionId, pmk::ScheduleChangeAction> actions;
      for (const auto& [key, action] : config_.change_actions) {
        if (key.first == schedule.id) actions[key.second] = action;
      }
      core.scheduler.add_schedule(pmk::compile_schedule(schedule, actions));
    }
    core.scheduler.set_initial_schedule(core_config.initial_schedule);
    core.dispatcher =
        std::make_unique<pmk::PartitionDispatcher>(pcbs_, &machine_.mmu());
    if (config_.telemetry.spans_enabled) {
      core.dispatcher->set_spans(&spans_);
    }
  }
  if (config_.telemetry.metrics_enabled) {
    router_.set_metrics(&metrics_);
    health_.set_metrics(&metrics_);
  }
  if (config_.telemetry.spans_enabled) {
    router_.set_spans(&spans_, [this] { return now(); });
    health_.set_spans(&spans_);
  }

  // Per-partition runtime: PAL (wrapping the POS kernel) + APEX. A
  // partition's APEX is bound to the scheduler of its core, which scopes
  // SET_MODULE_SCHEDULE to that core's PSTs.
  partitions_.resize(config_.partitions.size());
  for (std::size_t i = 0; i < config_.partitions.size(); ++i) {
    const PartitionConfig& pc = config_.partitions[i];
    const PartitionId id{static_cast<std::int32_t>(i)};
    PartitionRuntime& rt = partitions_[i];
    rt.pal = std::make_unique<pal::Pal>(make_kernel(pc.pos_kind),
                                        pc.deadline_registry);
    if (config_.telemetry.metrics_enabled) {
      rt.pal->set_metrics(&metrics_, static_cast<std::int32_t>(i));
    }
    if (config_.telemetry.profiler_enabled) {
      rt.pal->set_profiler(&profiler_);
    }
    rt.apex = std::make_unique<apex::Apex>(
        id, pcbs_[i], *rt.pal, router_, health_,
        cores_[core_affinity_[i]].scheduler, [this] { return now(); });
    if (config_.telemetry.spans_enabled) {
      rt.pal->set_spans(&spans_, static_cast<std::int32_t>(i));
      rt.apex->set_spans(&spans_);
    }
    wire_partition(id);
  }

  // Channels.
  for (const auto& channel : config_.channels) {
    router_.add_channel(channel);
  }
  router_.on_delivery = [this](const ipc::PortRef& dest) {
    if (dest.partition.valid() &&
        static_cast<std::size_t>(dest.partition.value()) <
            partitions_.size()) {
      apex(dest.partition).notify_queuing_delivery(dest.port);
    }
  };
  router_.on_source_space = [this](const ipc::PortRef& source) {
    if (source.partition.valid() &&
        static_cast<std::size_t>(source.partition.value()) <
            partitions_.size()) {
      apex(source.partition).notify_queuing_space(source.port);
    }
  };
  router_.remote_send = [this](const ipc::RemotePortRef& dest,
                               const ipc::Message& message,
                               ipc::ChannelKind kind) {
    if (remote_send) remote_send(dest, message, kind);
  };

  // Health Monitor policy tables and mechanisms. Integrated modules use the
  // full ARINC 653 dispatch: partition-level errors without a configured
  // partition-level response escalate to module level.
  health_.set_escalation(true);
  health_.set_module_table(config_.module_hm_table);
  for (std::size_t i = 0; i < config_.partitions.size(); ++i) {
    health_.set_partition_table(PartitionId{static_cast<std::int32_t>(i)},
                                config_.partitions[i].hm_table);
  }
  health_.invoke_error_handler = [this](PartitionId id,
                                        const hm::ErrorReport& report) {
    return apex(id).activate_error_handler(report);
  };
  health_.stop_process = [this](PartitionId id, ProcessId pid) {
    (void)apex(id).stop(pid);
  };
  health_.restart_process = [this](PartitionId id, ProcessId pid) {
    (void)apex(id).stop(pid);
    (void)apex(id).start(pid);
  };
  health_.stop_partition = [this](PartitionId id) {
    (void)apex(id).set_partition_mode(pmk::OperatingMode::kIdle);
    trace_.record(now(), EventKind::kPartitionModeChange, id.value(),
                  static_cast<std::int64_t>(pmk::OperatingMode::kIdle));
  };
  health_.restart_partition = [this](PartitionId id, bool cold) {
    init_partition(id, cold);
  };
  health_.stop_module = [this](bool reset) {
    stopped_ = true;
    trace_.record(now(), EventKind::kHmAction, -1, reset ? 1 : 0,
                  -1, "module_stop");
  };
  health_.on_report = [this](const hm::ErrorReport& report) {
    trace_.record(report.time, EventKind::kHmError, report.partition.value(),
                  report.process.value(),
                  static_cast<std::int64_t>(report.code),
                  to_string(report.action_taken));
  };

  // Scheduler/dispatcher observation + mode-based schedule actions, per
  // core.
  for (Core& core : cores_) {
    pmk::PartitionScheduler* scheduler = &core.scheduler;
    core.scheduler.on_schedule_switch = [this, scheduler](ScheduleId next,
                                                          ScheduleId old) {
      trace_.record(now(), EventKind::kScheduleSwitch, next.value(),
                    old.value());
      // Close the switch span SET_MODULE_SCHEDULE opened: the request has
      // now taken effect at the MTF boundary.
      const telemetry::SpanId sw = spans_.take_pending_schedule_switch();
      if (sw != 0) spans_.end(sw, now());
      const pmk::RuntimeSchedule* schedule = scheduler->schedule(next);
      AIR_ASSERT(schedule != nullptr);
      for (auto& pcb : pcbs_) {
        auto it = schedule->change_actions.find(pcb.id);
        if (it != schedule->change_actions.end() &&
            it->second != pmk::ScheduleChangeAction::kNone &&
            pcb.mode == pmk::OperatingMode::kNormal) {
          pcb.schedule_change_pending = true;
          pcb.pending_action = it->second;
        }
      }
    };
    core.dispatcher->on_context_switch = [this](PartitionId heir,
                                                PartitionId previous) {
      if (previous.valid()) {
        trace_.record(now(), EventKind::kPartitionPreempt, previous.value(),
                      heir.value());
      }
      trace_.record(now(), EventKind::kPartitionDispatch, heir.value(),
                    previous.value());
    };
    core.dispatcher->on_pending_schedule_change_action =
        [this](PartitionId id) { apply_pending_change_action(id); };
  }

  // Boot: initialise every partition (cold start -> NORMAL).
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    init_partition(PartitionId{static_cast<std::int32_t>(i)}, true);
  }
}

Module::~Module() = default;

void Module::wire_partition(PartitionId id) {
  PartitionRuntime& rt = partitions_[static_cast<std::size_t>(id.value())];
  const PartitionConfig& pc =
      config_.partitions[static_cast<std::size_t>(id.value())];

  // PAL deadline violations feed the Health Monitor (Algorithm 3 line 6).
  rt.pal->on_deadline_violation = [this, id](ProcessId pid, Ticks deadline,
                                             Ticks detected_at) {
    trace_.record(detected_at, EventKind::kDeadlineMiss, id.value(),
                  pid.value(), deadline);
    if (pos::ProcessControlBlock* pcb = kernel(id).pcb(pid)) {
      ++pcb->deadline_misses;
    }
    // Attach the root-cause chain while the causal caches still describe
    // the detection instant (HM recovery below may reset them).
    build_miss_anomaly(id, pid, deadline, detected_at);
    health_.report(detected_at, hm::ErrorCode::kDeadlineMissed,
                   hm::ErrorLevel::kProcess, id, pid, "deadline missed");
  };

  // Process state changes are traced (partition id in `a`).
  rt.pal->kernel().on_state_change = [this, id](ProcessId pid,
                                                pos::ProcessState state) {
    trace_.record(now(), EventKind::kProcessStateChange, id.value(),
                  pid.value(), static_cast<std::int64_t>(state));
  };

  if (auto* generic = dynamic_cast<pos::GenericKernel*>(&rt.pal->kernel())) {
    generic->on_paravirt_trap = [this, id] {
      trace_.record(now(), EventKind::kClockParavirtTrap, id.value());
    };
  }

  rt.apex->console = [this, id](std::string_view line) {
    partitions_[static_cast<std::size_t>(id.value())].console_lines.emplace_back(
        line);
    trace_.record(now(), EventKind::kUser, id.value(), -1, -1,
                  std::string{line});
  };
  rt.apex->on_mode_transition = [this, id](pmk::OperatingMode mode) {
    trace_.record(now(), EventKind::kPartitionModeChange, id.value(),
                  static_cast<std::int64_t>(mode));
    if (mode == pmk::OperatingMode::kColdStart ||
        mode == pmk::OperatingMode::kWarmStart) {
      init_partition(id, mode == pmk::OperatingMode::kColdStart);
    }
  };

  // Integration-time port definition.
  for (const auto& port : pc.sampling_ports) {
    rt.apex->define_sampling_port(port.name, port.direction,
                                  port.max_message_bytes,
                                  port.refresh_period);
  }
  for (const auto& port : pc.queuing_ports) {
    rt.apex->define_queuing_port(port.name, port.direction,
                                 port.max_message_bytes, port.capacity,
                                 port.discipline);
  }
}

void Module::init_partition(PartitionId id, bool cold) {
  PartitionRuntime& rt = partitions_[static_cast<std::size_t>(id.value())];
  const PartitionConfig& pc =
      config_.partitions[static_cast<std::size_t>(id.value())];
  pmk::PartitionControlBlock& pcb =
      pcbs_[static_cast<std::size_t>(id.value())];

  pcb.mode = cold ? pmk::OperatingMode::kColdStart
                  : pmk::OperatingMode::kWarmStart;
  trace_.record(now(), EventKind::kPartitionModeChange, id.value(),
                static_cast<std::int64_t>(pcb.mode));

  rt.pal->reset();
  rt.apex->reset_runtime_state();
  health_.reset_occurrences(id);

  // --- partition init code (modelled as zero-time) ---
  apex::Apex& apex = *rt.apex;
  for (const auto& buffer : pc.buffers) {
    BufferId out;
    (void)apex.create_buffer(buffer.name, buffer.max_message_bytes,
                             buffer.capacity, out, buffer.discipline);
  }
  for (const auto& blackboard : pc.blackboards) {
    BlackboardId out;
    (void)apex.create_blackboard(blackboard.name,
                                 blackboard.max_message_bytes, out);
  }
  for (const auto& semaphore : pc.semaphores) {
    SemaphoreId out;
    (void)apex.create_semaphore(semaphore.name, semaphore.initial,
                                semaphore.maximum, out,
                                semaphore.discipline);
  }
  for (const auto& event : pc.events) {
    EventId out;
    (void)apex.create_event(event.name, out);
  }
  if (!pc.error_handler.empty()) {
    (void)apex.create_error_handler(pc.error_handler, 4096);
  }
  for (const auto& process : pc.processes) {
    ProcessId pid;
    if (apex.create_process(process.attrs, pid) !=
        apex::ReturnCode::kNoError) {
      // Already exists (partition restart): the kernel kept the process.
      (void)apex.get_process_id(process.attrs.name, pid);
    }
    if (process.auto_start && pid.valid()) {
      (void)apex.start(pid);
    }
  }

  const apex::ReturnCode rc =
      apex.set_partition_mode(pmk::OperatingMode::kNormal);
  AIR_ASSERT(rc == apex::ReturnCode::kNoError);
  trace_.record(now(), EventKind::kPartitionModeChange, id.value(),
                static_cast<std::int64_t>(pmk::OperatingMode::kNormal));
}

void Module::apply_pending_change_action(PartitionId id) {
  pmk::PartitionControlBlock& pcb =
      pcbs_[static_cast<std::size_t>(id.value())];
  if (!pcb.schedule_change_pending) return;
  const pmk::ScheduleChangeAction action = pcb.pending_action;
  pcb.schedule_change_pending = false;
  pcb.pending_action = pmk::ScheduleChangeAction::kNone;
  trace_.record(now(), EventKind::kScheduleChangeAction, id.value(),
                static_cast<std::int64_t>(action));
  switch (action) {
    case pmk::ScheduleChangeAction::kNone:
      break;
    case pmk::ScheduleChangeAction::kWarmRestart:
      init_partition(id, false);
      break;
    case pmk::ScheduleChangeAction::kColdRestart:
      init_partition(id, true);
      break;
  }
}

void Module::tick_once() {
  if (stopped_) return;
  ++warp_stats_.stepped_ticks;
  profiler_.begin_tick();
  telemetry::HostProfiler::Scope tick_scope(profiler_,
                                            telemetry::ProfilePoint::kTick);

  // Timer interrupt.
  machine_.tick();
  (void)machine_.interrupts().take(hal::IrqLine::kTimer);

  // Algorithms 1 + 2 on every core (parallel partition windows; the
  // simulation serialises cores within the tick, which is sound because
  // core affinity keeps their partition sets disjoint).
  struct Dispatched {
    PartitionId active;
    Ticks elapsed;
  };
  util::FixedVector<Dispatched, 16> dispatched;
  for (Core& core : cores_) {
    {
      telemetry::HostProfiler::Scope scope(
          profiler_, telemetry::ProfilePoint::kScheduler);
      (void)core.scheduler.tick();
    }
    telemetry::HostProfiler::Scope scope(
        profiler_, telemetry::ProfilePoint::kDispatcher);
    const auto result = core.dispatcher->dispatch(
        core.scheduler.heir_partition(), core.scheduler.ticks());
    if (result.active.valid()) {
      dispatched.push_back({result.active, result.elapsed_ticks});
    }
  }

  // PMK channel service: queuing channels progress regardless of which
  // partitions are active.
  {
    telemetry::HostProfiler::Scope scope(profiler_,
                                         telemetry::ProfilePoint::kRouter);
    router_.pump_all();
  }

  for (const Dispatched& d : dispatched) {
    if (stopped_) return;
    pmk::PartitionControlBlock& pcb =
        pcbs_[static_cast<std::size_t>(d.active.value())];
    if (pcb.mode != pmk::OperatingMode::kNormal) continue;

    // Algorithm 3: surrogate clock-tick announce + deadline verification,
    // then run the partition's heir process for this tick.
    step_active_partition(d.active, d.elapsed);
  }

  // Observability window boundary: close after this tick's detections (a
  // miss detected on the boundary tick lands in the window it belongs to).
  // warp_headroom() bounds spans by next_close_tick(), so boundary ticks
  // are always stepped -- in every execution mode.
  if (online_ != nullptr && !stopped_ && now() == online_->next_close_tick()) {
    telemetry::HostProfiler::Scope scope(
        profiler_, telemetry::ProfilePoint::kOnlineClose);
    online_->close_window(now(), build_online_sample());
  }

  // Tick hook last: injected effects become visible from the next tick on,
  // exactly like an asynchronous fault landing between two timer periods.
  // warp_headroom() consults the hook's next_event(), so hooked ticks are
  // always stepped -- never folded into a warp span.
  if (tick_hook_ != nullptr && !stopped_) tick_hook_->on_tick(*this, now());
}

void Module::step_active_partition(PartitionId id, Ticks elapsed) {
  PartitionRuntime& rt = partitions_[static_cast<std::size_t>(id.value())];
  pmk::PartitionControlBlock& pcb =
      pcbs_[static_cast<std::size_t>(id.value())];
  // With several cores, another core's dispatch may have moved the MMU off
  // this partition's context within the same tick; re-select it (a no-op
  // on the single-core fast path).
  if (pcb.mmu_context >= 0) {
    machine_.mmu().set_active_context(pcb.mmu_context);
  }
  {
    telemetry::HostProfiler::Scope scope(profiler_,
                                         telemetry::ProfilePoint::kPal);
    rt.pal->announce_ticks(now(), elapsed);
  }
  if (stopped_) return;
  if (pcb.mode != pmk::OperatingMode::kNormal) return;  // HM intervened
  telemetry::HostProfiler::Scope scope(profiler_,
                                       telemetry::ProfilePoint::kExecutor);
  // Busy/slack telemetry is scraped from the PCB accounting at snapshot
  // time; the per-tick path pays only the two increments it always did.
  if (Executor::step(*this, id, now())) {
    ++pcb.busy_ticks;
  } else {
    ++pcb.slack_ticks;
  }
}

std::size_t Module::core_of(PartitionId partition) const {
  AIR_ASSERT(partition.valid() &&
             static_cast<std::size_t>(partition.value()) <
                 core_affinity_.size());
  return core_affinity_[static_cast<std::size_t>(partition.value())];
}

void Module::run(Ticks ticks) {
  if (ticks <= 0) return;  // explicit no-op
  Ticks done = 0;
  while (done < ticks && !stopped_) {
    if (time_warp_) {
      const Ticks n = std::min(warp_headroom(), ticks - done);
      if (n > 0) {
        warp_advance(n);
        done += n;
        continue;
      }
    }
    tick_once();
    ++done;
  }
}

void Module::run_until(Ticks time) {
  if (time <= now()) return;  // explicit no-op for now/past targets
  while (now() < time && !stopped_) {
    if (time_warp_) {
      const Ticks n = std::min(warp_headroom(), time - now());
      if (n > 0) {
        warp_advance(n);
        continue;
      }
    }
    tick_once();
  }
}

PartitionId Module::partition_id(std::string_view name) const {
  for (const auto& pcb : pcbs_) {
    if (pcb.name == name) return pcb.id;
  }
  return PartitionId::invalid();
}

apex::Apex& Module::apex(PartitionId id) {
  AIR_ASSERT(id.valid() &&
             static_cast<std::size_t>(id.value()) < partitions_.size());
  return *partitions_[static_cast<std::size_t>(id.value())].apex;
}

pal::Pal& Module::pal(PartitionId id) {
  AIR_ASSERT(id.valid() &&
             static_cast<std::size_t>(id.value()) < partitions_.size());
  return *partitions_[static_cast<std::size_t>(id.value())].pal;
}

pos::IKernel& Module::kernel(PartitionId id) { return pal(id).kernel(); }

pmk::PartitionControlBlock& Module::partition_pcb(PartitionId id) {
  AIR_ASSERT(id.valid() &&
             static_cast<std::size_t>(id.value()) < pcbs_.size());
  return pcbs_[static_cast<std::size_t>(id.value())];
}

const std::vector<std::string>& Module::console(PartitionId id) const {
  AIR_ASSERT(id.valid() &&
             static_cast<std::size_t>(id.value()) < partitions_.size());
  return partitions_[static_cast<std::size_t>(id.value())].console_lines;
}

telemetry::MetricsSnapshot Module::metrics_snapshot() {
  // The scrape is host work on behalf of observability; attribute it to
  // the telemetry plane itself. Wall-clock readings stay out of the
  // snapshot, which must remain deterministic.
  telemetry::HostProfiler::Scope profile_scope(
      profiler_, telemetry::ProfilePoint::kTelemetryScrape);
  if (metrics_.enabled()) {
    // Scrape the totals that layers count locally (cheap increments on
    // members they own) rather than publishing per event: PAL deadline
    // counters, POS kernel scheduling counters, and the MMU statistics.
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
      const auto index = static_cast<std::int32_t>(i);
      const pmk::PartitionControlBlock& pcb = pcbs_[i];
      metrics_.set_counter(telemetry::Metric::kPartitionBusyTicks, index,
                           static_cast<std::uint64_t>(pcb.busy_ticks));
      metrics_.set_counter(telemetry::Metric::kPartitionSlackTicks, index,
                           static_cast<std::uint64_t>(pcb.slack_ticks));
      const pal::Pal& p = *partitions_[i].pal;
      metrics_.set_counter(telemetry::Metric::kDeadlineChecks, index,
                           p.deadline_checks());
      metrics_.set_counter(telemetry::Metric::kDeadlineMisses, index,
                           p.violations_detected());
      const pos::IKernel& k = p.kernel();
      metrics_.set_counter(telemetry::Metric::kProcessDispatches, index,
                           k.dispatch_count());
      metrics_.set_counter(telemetry::Metric::kProcessSwitches, index,
                           k.process_switches());
      metrics_.set(telemetry::Metric::kReadyQueueDepth, index,
                   static_cast<std::int64_t>(k.ready_depth()));
    }
    // Partition context switches / preemptions: the dispatcher already
    // counts them in the PCBs, so the context-switch path pays no registry
    // write; the totals land here. A zero total stays unwritten -- the
    // per-event adds never touched those slots either.
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
      const auto index = static_cast<std::int32_t>(i);
      const pmk::PartitionControlBlock& pcb = pcbs_[i];
      if (pcb.context_restores > 0) {
        metrics_.set_counter(telemetry::Metric::kPartitionContextSwitches,
                             index, pcb.context_restores);
      }
      if (pcb.context_saves > 0) {
        metrics_.set_counter(telemetry::Metric::kPartitionPreemptions, index,
                             pcb.context_saves);
      }
    }
    // Partition-scheduler counters, summed across cores (all cores share
    // the module-wide -1 slot, as the per-event adds did).
    std::uint64_t points = 0;
    std::uint64_t switches = 0;
    for (const Core& core : cores_) {
      points += core.scheduler.preemption_points_hit();
      switches += core.scheduler.schedule_switches();
    }
    if (points > 0) {
      metrics_.set_counter(telemetry::Metric::kSchedulePreemptionPoints, -1,
                           points);
    }
    if (switches > 0) {
      metrics_.set_counter(telemetry::Metric::kScheduleSwitches, -1,
                           switches);
    }
    // Router traffic counters (messages/bytes per channel, remote drops).
    router_.scrape_traffic();
    const hal::MmuStats& mmu = machine_.mmu().stats();
    metrics_.set_counter(telemetry::Metric::kTlbHits, -1, mmu.tlb_hits);
    metrics_.set_counter(telemetry::Metric::kTlbMisses, -1, mmu.tlb_misses);
    metrics_.set_counter(telemetry::Metric::kMmuTableWalks, -1,
                         mmu.table_walks);
    metrics_.set_counter(telemetry::Metric::kMmuFaults, -1, mmu.faults);
    if (config_.telemetry.spans_enabled) {
      metrics_.set_counter(telemetry::Metric::kSpansRecorded, -1,
                           spans_.recorded_spans());
      metrics_.set_counter(telemetry::Metric::kSpansDropped, -1,
                           spans_.dropped_spans());
      metrics_.set(telemetry::Metric::kSpansOpen, -1,
                   static_cast<std::int64_t>(spans_.open_count()));
    }
  }
  return metrics_.snapshot(now());
}

telemetry::OnlineSample Module::build_online_sample() const {
  telemetry::OnlineSample sample;
  sample.partitions.resize(partitions_.size());
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const auto index = static_cast<std::int32_t>(i);
    telemetry::OnlinePartitionSample& ps = sample.partitions[i];
    const pmk::PartitionControlBlock& pcb = pcbs_[i];
    ps.busy_ticks = static_cast<std::uint64_t>(pcb.busy_ticks);
    ps.slack_ticks = static_cast<std::uint64_t>(pcb.slack_ticks);
    const pal::Pal& p = *partitions_[i].pal;
    ps.deadline_checks = p.deadline_checks();
    ps.deadline_misses = p.violations_detected();
    ps.dispatches = p.kernel().dispatch_count();
    ps.hm_errors =
        metrics_.counter_value(telemetry::Metric::kHmErrors, index);
    if (const telemetry::Histogram* slack =
            metrics_.histogram(telemetry::Metric::kDeadlineSlack, index)) {
      ps.deadline_slack = *slack;
    }
  }
  // Router-local totals, not registry reads: traffic counters reach the
  // registry only at snapshot time (scrape_traffic), and the router
  // accumulates them under the same metrics-enabled condition the retired
  // per-message adds used -- so these values are unchanged.
  sample.ipc_messages = router_.total_messages();
  sample.ipc_bytes = router_.total_bytes();
  sample.ipc_drops = router_.total_drops();
  sample.spans_dropped = spans_.dropped_spans();
  sample.trace_dropped = trace_.dropped_events();
  sample.trace_dropped_critical = trace_.dropped_critical_events();
  return sample;
}

bool Module::start_process_by_name(PartitionId id, std::string_view name) {
  apex::Apex& a = apex(id);
  ProcessId pid;
  if (a.get_process_id(name, pid) != apex::ReturnCode::kNoError) return false;
  return a.start(pid) == apex::ReturnCode::kNoError;
}

std::string Module::status_report() {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "module %s  t=%lld%s  cores=%zu\n",
                config_.name.c_str(), static_cast<long long>(now()),
                stopped_ ? "  [STOPPED]" : "", cores_.size());
  out += line;
  // Measurement conditions up front: timings in this report are only
  // comparable to the checked-in baselines when taken from a Release tree.
  std::snprintf(line, sizeof line, "  build: %s%s%s\n", build_type(),
                lto_build() ? " +lto" : "",
                release_build() ? "" : "  [non-Release: timings not "
                                       "comparable to Release baselines]");
  out += line;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const auto status = cores_[c].scheduler.status();
    std::snprintf(line, sizeof line,
                  "  core %zu: schedule %d (next %d, last switch %lld)\n", c,
                  status.current.value(), status.next.value(),
                  static_cast<long long>(status.last_switch_time));
    out += line;
  }
  for (const auto& pcb : pcbs_) {
    std::snprintf(line, sizeof line,
                  "  partition %-12s mode=%-9s busy=%llu slack=%llu "
                  "switches=%llu\n",
                  pcb.name.c_str(), to_string(pcb.mode),
                  static_cast<unsigned long long>(pcb.busy_ticks),
                  static_cast<unsigned long long>(pcb.slack_ticks),
                  static_cast<unsigned long long>(pcb.context_restores));
    out += line;
    auto& k = kernel(pcb.id);
    for (std::size_t q = 0; q < k.process_count(); ++q) {
      apex::ProcessStatus st;
      if (apex(pcb.id).get_process_status(
              ProcessId{static_cast<std::int32_t>(q)}, st) !=
          apex::ReturnCode::kNoError) {
        continue;
      }
      std::snprintf(line, sizeof line,
                    "    %-20s %-8s prio=%-3d completions=%llu "
                    "max_resp=%lld misses=%llu\n",
                    st.name.c_str(), to_string(st.state),
                    st.current_priority,
                    static_cast<unsigned long long>(st.completions),
                    static_cast<long long>(st.max_response),
                    static_cast<unsigned long long>(st.deadline_misses));
      out += line;
    }
  }
  std::snprintf(line, sizeof line, "  hm log entries: %zu\n",
                health_.log().size());
  out += line;
  std::snprintf(line, sizeof line,
                "  warp: stepped=%llu warped=%llu spans=%llu\n",
                static_cast<unsigned long long>(warp_stats_.stepped_ticks),
                static_cast<unsigned long long>(warp_stats_.warped_ticks),
                static_cast<unsigned long long>(warp_stats_.warp_spans));
  out += line;
  if (config_.telemetry.spans_enabled) {
    std::snprintf(line, sizeof line,
                  "  spans: recorded=%llu dropped=%llu open=%zu anomalies=%zu\n",
                  static_cast<unsigned long long>(spans_.recorded_spans()),
                  static_cast<unsigned long long>(spans_.dropped_spans()),
                  spans_.open_count(), spans_.anomalies().size());
    out += line;
  }
  if (config_.trace_enabled) {
    std::snprintf(
        line, sizeof line,
        "  trace: recorded=%llu dropped=%llu dropped_critical=%llu%s\n",
        static_cast<unsigned long long>(trace_.recorded_events()),
        static_cast<unsigned long long>(trace_.dropped_events()),
        static_cast<unsigned long long>(trace_.dropped_critical_events()),
        trace_.flight_recorder() ? " [flight recorder]" : "");
    out += line;
  }
  // Pooled-memory observability (PR 7 pools + the label arena): these are
  // the counters the zero-allocation steady-state claim rests on.
  {
    const ipc::Payload::PoolStats pool = ipc::Payload::pool_stats();
    std::snprintf(line, sizeof line,
                  "  payload pool: heap_allocs=%llu reuses=%llu "
                  "returns=%llu free=%zu\n",
                  static_cast<unsigned long long>(pool.heap_allocs),
                  static_cast<unsigned long long>(pool.pool_reuses),
                  static_cast<unsigned long long>(pool.pool_returns),
                  pool.free_blocks);
    out += line;
    const telemetry::StringArena::Stats& arena = arena_.stats();
    std::snprintf(line, sizeof line,
                  "  label arena: symbols=%zu blocks=%zu bytes=%zu "
                  "high_water=%zu hits=%llu misses=%llu trims=%llu\n",
                  arena.symbols, arena.blocks, arena.bytes_used,
                  arena.high_water,
                  static_cast<unsigned long long>(arena.hits),
                  static_cast<unsigned long long>(arena.misses),
                  static_cast<unsigned long long>(arena.trims));
    out += line;
  }
  if (profiler_.enabled() && profiler_.ticks() > 0) {
    const telemetry::HostProfiler::PathStats tick =
        profiler_.point_stats(telemetry::ProfilePoint::kTick);
    std::snprintf(line, sizeof line,
                  "  profile: sampled=%llu ticks (stride %u), "
                  "mean tick=%.1f ns, max=%llu ns\n",
                  static_cast<unsigned long long>(profiler_.ticks()),
                  profiler_.stride(),
                  tick.calls > 0 ? static_cast<double>(tick.total_ns) /
                                       static_cast<double>(tick.calls)
                                 : 0.0,
                  static_cast<unsigned long long>(tick.max_ns));
    out += line;
  }
  if (online_ != nullptr) out += online_->summary_line();
  if (metrics_.enabled()) {
    const telemetry::MetricsSnapshot snap = metrics_snapshot();
    std::snprintf(line, sizeof line, "  telemetry: %zu metric series\n",
                  snap.samples.size());
    out += line;
    for (const auto& pcb : pcbs_) {
      const auto index = pcb.id.value();
      const std::uint64_t busy =
          snap.counter(telemetry::Metric::kPartitionBusyTicks, index);
      const std::uint64_t slack =
          snap.counter(telemetry::Metric::kPartitionSlackTicks, index);
      const double util =
          busy + slack > 0
              ? 100.0 * static_cast<double>(busy) /
                    static_cast<double>(busy + slack)
              : 0.0;
      std::snprintf(
          line, sizeof line,
          "    %-12s util=%5.1f%% deadline_misses=%llu dispatches=%llu\n",
          pcb.name.c_str(), util,
          static_cast<unsigned long long>(
              snap.counter(telemetry::Metric::kDeadlineMisses, index)),
          static_cast<unsigned long long>(
              snap.counter(telemetry::Metric::kProcessDispatches, index)));
      out += line;
    }
    std::uint64_t msgs = 0, bytes = 0, drops = 0;
    for (const auto& sample : snap.samples) {
      if (sample.metric == telemetry::Metric::kIpcMessages) {
        msgs += sample.counter;
      } else if (sample.metric == telemetry::Metric::kIpcBytes) {
        bytes += sample.counter;
      } else if (sample.metric == telemetry::Metric::kIpcDrops) {
        drops += sample.counter;
      }
    }
    std::snprintf(line, sizeof line,
                  "    ipc: %llu messages, %llu bytes, %llu drops\n",
                  static_cast<unsigned long long>(msgs),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(drops));
    out += line;
  }
  return out;
}

void Module::deliver_remote(PartitionId partition, const std::string& port,
                            const ipc::Message& message,
                            ipc::ChannelKind kind) {
  router_.deliver_remote({partition, port}, message, kind);
}

void Module::build_miss_anomaly(PartitionId id, ProcessId pid, Ticks deadline,
                                Ticks detected_at) {
  if (!config_.telemetry.spans_enabled) return;
  // PAL closed the job span (status kDeadlineMiss) just before invoking this
  // callback, so the recorder's last_ended cache still points at it. Walk
  // the causal caches backwards from there; each hop explains why the
  // previous one happened.
  telemetry::Anomaly anomaly;
  anomaly.detected_at = detected_at;
  anomaly.partition = id.value();
  anomaly.process = pid.value();
  anomaly.deadline = deadline;

  const telemetry::Span job = spans_.last_ended(telemetry::SpanKind::kJob);
  const bool job_matches =
      job.id != 0 && job.a == id.value() && job.b == pid.value() &&
      job.status == telemetry::SpanStatus::kDeadlineMiss;
  anomaly.chain.push_back({spans_.intern("deadline_miss"),
                           job_matches ? job.id : 0, detected_at,
                           spans_.intern("deadline " +
                                         std::to_string(deadline) +
                                         " expired for process " +
                                         std::to_string(pid.value()))});
  if (!job_matches) {
    spans_.add_anomaly(std::move(anomaly));
    return;
  }
  anomaly.chain.push_back(
      {spans_.intern("job_released"), job.id, job.start,
       spans_.intern("job released at " + std::to_string(job.start) +
                     " in partition " + std::to_string(id.value()))});

  // Was the partition's window closed between release and detection? Then
  // the miss was (at least partly) a preemption blackout: the partition
  // could not run while other windows held the processor.
  const telemetry::Span w = spans_.last_window(id.value());
  bool causal_link = false;
  if (w.id != 0 && w.end > job.start && w.end <= detected_at) {
    causal_link = true;
    anomaly.chain.push_back(
        {spans_.intern("window_end_preemption"), w.id, w.end,
         spans_.intern("partition window closed at " +
                       std::to_string(w.end))});
    if (deadline >= w.end) {
      anomaly.chain.push_back(
          {spans_.intern("partition_inactive"), 0, detected_at,
           spans_.intern(
               "deadline expired while the partition was not scheduled")});
    }
    // Did a schedule switch take effect in that gap? Then the blackout came
    // from mode change, and its parent span says who requested it.
    const telemetry::Span sw =
        spans_.last_ended(telemetry::SpanKind::kScheduleSwitch);
    if (sw.id != 0 && sw.end > job.start && sw.end <= detected_at) {
      anomaly.chain.push_back(
          {spans_.intern("schedule_switch"), sw.id, sw.end,
           spans_.intern("schedule " + std::to_string(sw.b) + " -> " +
                         std::to_string(sw.a) + " took effect at " +
                         std::to_string(sw.end))});
      if (sw.parent != 0) {
        anomaly.chain.push_back(
            {spans_.intern("requested_by"), sw.parent, sw.start,
             spans_.intern("SET_MODULE_SCHEDULE issued at " +
                           std::to_string(sw.start))});
      }
    }
  }
  if (!causal_link) {
    // No external event stole the processor: the job simply ran past its
    // time capacity inside its own window.
    anomaly.chain.push_back(
        {spans_.intern("capacity_overrun"), job.id, detected_at,
         spans_.intern(
             "no preemption between release and miss; job exceeded its "
             "time capacity")});
  }
  spans_.add_anomaly(std::move(anomaly));
}

}  // namespace air::system
