#include "system/executor.hpp"

#include <variant>

#include "pos/generic_kernel.hpp"
#include "system/module.hpp"
#include "util/assert.hpp"

namespace air::system {

namespace {

using util::EventKind;

struct OpOutcome {
  bool blocked{false};
  bool jumped{false};
};

/// Interpret one zero-time op. Returns its outcome; stores the service
/// return code in the PCB for observability.
OpOutcome apply_service(Module& module, apex::Apex& apex,
                        pos::ProcessControlBlock& pcb, const pos::Op& op,
                        PartitionId partition, Ticks now, bool resumed) {
  OpOutcome outcome;
  // Receive-style ops copy the message into this scratch; thread_local so
  // its capacity survives across calls (per worker thread under the
  // parallel driver) and the steady state never reallocates it.
  thread_local std::string message_scratch;
  auto done = [&](apex::ReturnCode code) {
    pcb.last_status = static_cast<std::int32_t>(code);
  };
  auto service = [&](apex::ServiceResult result) {
    outcome.blocked = result.blocked;
    if (!result.blocked) done(result.code);
  };

  std::visit(
      [&](const auto& o) {
        using T = std::decay_t<decltype(o)>;
        if constexpr (std::is_same_v<T, pos::OpCompute>) {
          AIR_ASSERT_MSG(false, "OpCompute handled by the caller");
        } else if constexpr (std::is_same_v<T, pos::OpPeriodicWait>) {
          service(apex.periodic_wait());
        } else if constexpr (std::is_same_v<T, pos::OpSporadicWait>) {
          service(apex.sporadic_wait());
        } else if constexpr (std::is_same_v<T, pos::OpReleaseProcess>) {
          ProcessId target;
          if (apex.get_process_id(o.process, target) ==
              apex::ReturnCode::kNoError) {
            done(apex.release_process(target));
          } else {
            done(apex::ReturnCode::kInvalidConfig);
          }
        } else if constexpr (std::is_same_v<T, pos::OpTimedWait>) {
          service(apex.timed_wait(o.delay));
        } else if constexpr (std::is_same_v<T, pos::OpSuspendSelf>) {
          service(apex.suspend_self(o.timeout, resumed));
        } else if constexpr (std::is_same_v<T, pos::OpStopSelf>) {
          done(apex.stop_self());
        } else if constexpr (std::is_same_v<T, pos::OpReplenish>) {
          done(apex.replenish(o.budget));
        } else if constexpr (std::is_same_v<T, pos::OpLockPreemption>) {
          done(apex.lock_preemption());
        } else if constexpr (std::is_same_v<T, pos::OpUnlockPreemption>) {
          done(apex.unlock_preemption());
        } else if constexpr (std::is_same_v<T, pos::OpSemWait>) {
          service(apex.wait_semaphore(SemaphoreId{o.semaphore}, o.timeout,
                                      resumed));
        } else if constexpr (std::is_same_v<T, pos::OpSemSignal>) {
          done(apex.signal_semaphore(SemaphoreId{o.semaphore}));
        } else if constexpr (std::is_same_v<T, pos::OpEventSet>) {
          done(apex.set_event(EventId{o.event}));
        } else if constexpr (std::is_same_v<T, pos::OpEventReset>) {
          done(apex.reset_event(EventId{o.event}));
        } else if constexpr (std::is_same_v<T, pos::OpEventWait>) {
          service(apex.wait_event(EventId{o.event}, o.timeout, resumed));
        } else if constexpr (std::is_same_v<T, pos::OpBufferSend>) {
          service(apex.send_buffer(BufferId{o.buffer}, o.message, o.timeout,
                                   resumed));
        } else if constexpr (std::is_same_v<T, pos::OpBufferReceive>) {
          std::string& message = message_scratch;
          message.clear();
          service(
              apex.receive_buffer(BufferId{o.buffer}, o.timeout, message,
                                  resumed));
        } else if constexpr (std::is_same_v<T, pos::OpBlackboardDisplay>) {
          done(apex.display_blackboard(BlackboardId{o.blackboard}, o.message));
        } else if constexpr (std::is_same_v<T, pos::OpBlackboardRead>) {
          std::string& message = message_scratch;
          message.clear();
          service(apex.read_blackboard(BlackboardId{o.blackboard}, o.timeout,
                                       message, resumed));
        } else if constexpr (std::is_same_v<T, pos::OpSamplingWrite>) {
          done(apex.write_sampling_message(PortId{o.port}, o.message));
          module.trace().record(now, EventKind::kPortSend, partition.value(),
                                o.port,
                                static_cast<std::int64_t>(o.message.size()));
        } else if constexpr (std::is_same_v<T, pos::OpSamplingRead>) {
          std::string& message = message_scratch;
          message.clear();
          bool valid = false;
          done(apex.read_sampling_message(PortId{o.port}, message, valid));
          module.trace().record(now, EventKind::kPortReceive,
                                partition.value(), o.port,
                                valid ? 1 : 0);
        } else if constexpr (std::is_same_v<T, pos::OpQueuingSend>) {
          service(apex.send_queuing_message(PortId{o.port}, o.message,
                                            o.timeout, resumed));
          if (!outcome.blocked) {
            module.trace().record(
                now, EventKind::kPortSend, partition.value(), o.port,
                static_cast<std::int64_t>(o.message.size()));
          }
        } else if constexpr (std::is_same_v<T, pos::OpQueuingReceive>) {
          std::string& message = message_scratch;
          message.clear();
          service(apex.receive_queuing_message(PortId{o.port}, o.timeout,
                                               message, resumed));
          if (!outcome.blocked) {
            module.trace().record(
                now, EventKind::kPortReceive, partition.value(), o.port,
                static_cast<std::int64_t>(message.size()));
          }
        } else if constexpr (std::is_same_v<T, pos::OpSetModuleSchedule>) {
          done(apex.set_module_schedule(ScheduleId{o.schedule}));
          module.trace().record(now, EventKind::kScheduleSwitchReq,
                                o.schedule, partition.value());
        } else if constexpr (std::is_same_v<T, pos::OpRaiseError>) {
          done(apex.raise_application_error(o.code, o.message));
        } else if constexpr (std::is_same_v<T, pos::OpTryDisableClockIrq>) {
          // Paravirtualisation gate (Sect. 2.5): the attempt is refused and
          // trapped no matter which POS issues it.
          if (auto* generic =
                  dynamic_cast<pos::GenericKernel*>(&apex.kernel())) {
            (void)generic->try_disable_clock_interrupt();
          } else {
            module.trace().record(now, EventKind::kClockParavirtTrap,
                                  partition.value());
          }
          done(apex::ReturnCode::kNoError);
        } else if constexpr (std::is_same_v<T, pos::OpMemoryAccess>) {
          std::uint32_t word = 0;
          auto bytes = std::as_writable_bytes(std::span{&word, 1});
          const hal::TranslateResult result =
              o.write ? module.machine().checked_write(
                            o.vaddr, std::as_bytes(std::span{&word, 1}),
                            hal::ExecLevel::kApplication)
                      : module.machine().checked_read(
                            o.vaddr, bytes, hal::ExecLevel::kApplication);
          if (!result.ok()) {
            module.trace().record(now, EventKind::kSpatialViolation,
                                  partition.value(), pcb.id.value(),
                                  static_cast<std::int64_t>(o.vaddr));
            module.metrics().add(telemetry::Metric::kSpatialViolations,
                                 partition.value());
            module.health().report(now, hm::ErrorCode::kMemoryViolation,
                                   hm::ErrorLevel::kProcess, partition,
                                   pcb.id, "access outside partition space");
            done(apex::ReturnCode::kInvalidParam);
          } else {
            done(apex::ReturnCode::kNoError);
          }
        } else if constexpr (std::is_same_v<T, pos::OpStopProcess>) {
          ProcessId target;
          if (apex.get_process_id(o.process, target) ==
              apex::ReturnCode::kNoError) {
            done(apex.stop(target));
          } else {
            done(apex::ReturnCode::kInvalidConfig);
          }
        } else if constexpr (std::is_same_v<T, pos::OpStartProcess>) {
          ProcessId target;
          if (apex.get_process_id(o.process, target) ==
              apex::ReturnCode::kNoError) {
            done(apex.start(target));
          } else {
            done(apex::ReturnCode::kInvalidConfig);
          }
        } else if constexpr (std::is_same_v<T, pos::OpLog>) {
          done(apex.report_application_message(o.text));
        } else if constexpr (std::is_same_v<T, pos::OpGoto>) {
          pcb.pc = o.target;
          outcome.jumped = true;
        }
      },
      op);
  return outcome;
}

}  // namespace

bool Executor::step(Module& module, PartitionId id, Ticks now) {
  auto& apex = module.apex(id);
  // Sealed fast path over the partition's kernel: schedule() + pcb() run
  // once per simulated tick, so they go through the devirtualized dispatch
  // bound at PAL construction rather than the vtable.
  pos::KernelDispatch& kernel = module.pal(id).dispatch();

  bool did_work = false;
  int budget = kMaxServicesPerTick;
  while (budget-- > 0) {
    ProcessId pid;
    {
      // Attribute the heir-election fast path (O(1) bitmap scan) under the
      // executor: "tick;executor;kernel_dispatch" in the host profile.
      telemetry::HostProfiler::Scope scope(
          module.profiler_, telemetry::ProfilePoint::kKernelDispatch);
      pid = kernel.schedule();
    }
    if (!pid.valid()) return did_work;  // nothing schedulable: window slack

    did_work = true;
    pos::ProcessControlBlock& pcb = *kernel.pcb(pid);
    if (pcb.attrs.script.empty()) return true;  // busy idle process

    const pos::Op& op = pcb.attrs.script[pcb.pc];

    if (const auto* compute = std::get_if<pos::OpCompute>(&op)) {
      ++pcb.op_progress;
      if (pcb.op_progress >= compute->ticks) {
        pcb.op_progress = 0;
        pcb.pc = (pcb.pc + 1) % pcb.attrs.script.size();
      }
      return true;  // the tick was spent computing
    }

    const bool resumed = pcb.op_blocked;
    pcb.op_blocked = false;
    const std::uint64_t epoch_before = pcb.start_epoch;
    const OpOutcome outcome =
        apply_service(module, apex, pcb, op, id, now, resumed);

    if (outcome.blocked) {
      pcb.op_blocked = true;
      continue;  // process is waiting; give the tick to the next ready one
    }
    if (module.stopped() ||
        module.partition_pcb(id).mode != pmk::OperatingMode::kNormal) {
      return true;  // the service shut down / restarted the partition
    }
    if (pcb.state == pos::ProcessState::kDormant) {
      continue;  // stopped itself; schedule the next ready process
    }
    if (pcb.start_epoch != epoch_before) {
      continue;  // the call restarted this process from its entry address
    }
    if (!outcome.jumped) {
      pcb.pc = (pcb.pc + 1) % pcb.attrs.script.size();
    }
  }
  // Service budget exhausted: the tick is charged to syscall overhead.
  return true;
}

}  // namespace air::system
