// Workload executor: interprets the running process's script against the
// APEX interface, one tick at a time.
//
// This plays the role of the application code in the paper's prototype: a
// process body is a loop of computation and APEX service calls. Only
// OpCompute consumes processor time; service calls are instantaneous (a
// bounded number per tick models syscall overhead). A blocking service
// leaves the program counter in place and the op is re-issued with
// resumed = true when the process wakes.
#pragma once

#include "util/types.hpp"

namespace air::system {

class Module;

class Executor {
 public:
  /// Run partition `id`'s heir process for (up to) one tick of execution.
  /// Returns true when any process executed (compute or service calls);
  /// false when no process was schedulable -- window slack, which the
  /// module accounts per partition for integrator diagnostics.
  static bool step(Module& module, PartitionId id, Ticks now);

  /// Upper bound of zero-time service calls interpreted per tick before the
  /// tick is charged to syscall overhead.
  static constexpr int kMaxServicesPerTick = 64;
};

}  // namespace air::system
