// The integrated module: one onboard computer running the full AIR stack.
//
// Composes the simulated machine (HAL), the PMK (partition scheduler Alg. 1,
// dispatcher Alg. 2, spatial manager, channel router), one PAL + POS kernel +
// APEX instance per partition, the Health Monitor and the event trace, and
// drives them tick by tick:
//
//   per tick:  machine.tick()                      (timer interrupt)
//              scheduler.tick()                    (Algorithm 1)
//              dispatcher.dispatch(heir, ticks)    (Algorithm 2)
//              router.pump_all()                   (PMK channel service)
//              pal.announce_ticks(now, elapsed)    (Algorithm 3, active
//                                                   partition only)
//              executor.step()                     (run the heir process)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apex/apex.hpp"
#include "hal/machine.hpp"
#include "hm/health_monitor.hpp"
#include "ipc/router.hpp"
#include "pal/pal.hpp"
#include "pmk/partition.hpp"
#include "pmk/partition_dispatcher.hpp"
#include "pmk/partition_scheduler.hpp"
#include "pmk/spatial.hpp"
#include "system/module_config.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/online.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/spans.hpp"
#include "util/fixed_vector.hpp"
#include "util/trace.hpp"

namespace air::system {

class Module;

/// Per-tick observation/injection hook (fault injection, instrumentation).
/// The module invokes on_tick() at the end of every *stepped* tick, and the
/// time-warp engine bounds its fast-forward spans by next_event() so a hook
/// never misses a tick it declared interesting -- which is what makes a
/// hook's effects byte-identical under per-tick, warped, lockstep and
/// parallel World execution.
class TickHook {
 public:
  virtual ~TickHook() = default;
  /// Earliest tick strictly greater than `now` that must be stepped (the
  /// hook will act on it). kInfiniteTime = no constraint.
  [[nodiscard]] virtual Ticks next_event(Ticks now) const = 0;
  /// Invoked at the end of each stepped tick (module not stopped).
  virtual void on_tick(Module& module, Ticks now) = 0;
};

class Module {
 public:
  explicit Module(ModuleConfig config);
  ~Module();

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Advance the module by `ticks` clock ticks (no-op once stopped or when
  /// `ticks` <= 0). Quiescent spans are fast-forwarded by the time-warp
  /// engine when enabled.
  void run(Ticks ticks);

  /// Advance until the module clock reaches `time` (no-op when `time` is
  /// now or in the past). Delegates to the same warp engine as run().
  void run_until(Ticks time);

  /// Execute exactly one clock tick.
  void tick_once();

  // --- next-event time warp ---

  /// Warped-vs-stepped tick accounting. Deliberately kept outside the
  /// metrics registry: snapshots must stay byte-identical with warp on and
  /// off, so the engine's own counters cannot live in the oracle.
  struct WarpStats {
    std::uint64_t stepped_ticks{0};  // ticks executed via tick_once()
    std::uint64_t warped_ticks{0};   // ticks skipped via warp_advance()
    std::uint64_t warp_spans{0};     // warp_advance() invocations
  };

  /// Enable/disable the time warp at runtime (benches and equivalence
  /// tests flip it on an already-built module).
  void set_time_warp(bool on) { time_warp_ = on; }
  [[nodiscard]] bool time_warp_enabled() const { return time_warp_; }
  [[nodiscard]] const WarpStats& warp_stats() const { return warp_stats_; }

  /// Number of upcoming ticks that are provably boring: the module is
  /// quiescent (no runnable work, no pending context switch, no router
  /// backlog, no pending telemetry sample) and no layer has an event before
  /// now() + headroom + 1. Returns 0 when any of that fails, when the
  /// module is stopped or not yet booted, or when the per-tick host
  /// profiler is enabled (it observes every stepped tick).
  [[nodiscard]] Ticks warp_headroom() const;

  /// Fast-forward the module by `n` boring ticks in O(1): bulk-advance the
  /// HAL clock, every core's scheduler/dispatcher and the active
  /// partitions' PAL/POS, replicating exactly the per-tick counter effects
  /// of `n` quiescent tick_once() calls. `n` must not exceed
  /// warp_headroom() (layer asserts enforce it).
  void warp_advance(Ticks n);

  /// Module time. The scheduler's counter sits at -1 before the first tick
  /// (so that tick 0 is the first preemption point); boot-time actions are
  /// stamped at time 0.
  [[nodiscard]] Ticks now() const {
    const Ticks t = cores_.front().scheduler.ticks();
    return t < 0 ? 0 : t;
  }
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Install (or clear, with nullptr) the per-tick hook. Borrowed pointer;
  /// the caller keeps ownership and must outlive the module's runs.
  void set_tick_hook(TickHook* hook) { tick_hook_ = hook; }
  [[nodiscard]] TickHook* tick_hook() const { return tick_hook_; }

  // --- component access ---
  [[nodiscard]] util::Trace& trace() { return trace_; }
  [[nodiscard]] const util::Trace& trace() const { return trace_; }
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] telemetry::HostProfiler& profiler() { return profiler_; }
  [[nodiscard]] const telemetry::HostProfiler& profiler() const {
    return profiler_;
  }
  /// Arena backing span/trace labels and root-cause strings. Module-owned
  /// so both recorders share symbols and its stats() describe the whole
  /// telemetry plane (status_report, profiler allocation attribution).
  [[nodiscard]] const telemetry::StringArena& arena() const { return arena_; }
  /// Causal span recorder (windows, jobs, message legs, HM handlers,
  /// root-cause chains). Export with telemetry::spans_to_json.
  [[nodiscard]] telemetry::SpanRecorder& spans() { return spans_; }
  [[nodiscard]] const telemetry::SpanRecorder& spans() const {
    return spans_;
  }

  /// Deterministic metrics snapshot at the current module time: scrapes the
  /// layer-local totals (PAL deadline counters, POS kernel counters, MMU
  /// statistics) into the registry, then returns the ordered sample set.
  [[nodiscard]] telemetry::MetricsSnapshot metrics_snapshot();

  /// In-flight observability plane (nullptr when config.telemetry.online
  /// is disabled). Digests close on deterministic tick boundaries in every
  /// execution mode; see telemetry/online.hpp.
  [[nodiscard]] telemetry::OnlinePlane* online() { return online_.get(); }
  [[nodiscard]] const telemetry::OnlinePlane* online() const {
    return online_.get();
  }

  /// Register/remove a streaming observer of trace events (vitral console,
  /// online monitors, tests). Sinks fire synchronously inside record().
  void add_trace_sink(util::TraceSink* sink) { trace_.add_sink(sink); }
  void remove_trace_sink(util::TraceSink* sink) { trace_.remove_sink(sink); }
  [[nodiscard]] hal::Machine& machine() { return machine_; }
  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  /// Scheduler / dispatcher of one core (core 0 by default, which is the
  /// whole machine for single-core configurations).
  [[nodiscard]] pmk::PartitionScheduler& scheduler(std::size_t core = 0) {
    return cores_[core].scheduler;
  }
  [[nodiscard]] pmk::PartitionDispatcher& dispatcher(std::size_t core = 0) {
    return *cores_[core].dispatcher;
  }
  /// The core whose schedules host `partition`.
  [[nodiscard]] std::size_t core_of(PartitionId partition) const;
  [[nodiscard]] hm::HealthMonitor& health() { return health_; }
  [[nodiscard]] ipc::Router& router() { return router_; }
  [[nodiscard]] pmk::SpatialManager& spatial() { return spatial_; }
  [[nodiscard]] const ModuleConfig& config() const { return config_; }

  [[nodiscard]] std::size_t partition_count() const {
    return partitions_.size();
  }
  [[nodiscard]] PartitionId partition_id(std::string_view name) const;
  [[nodiscard]] apex::Apex& apex(PartitionId id);
  [[nodiscard]] pal::Pal& pal(PartitionId id);
  [[nodiscard]] pos::IKernel& kernel(PartitionId id);
  [[nodiscard]] pmk::PartitionControlBlock& partition_pcb(PartitionId id);

  /// Lines written by the partition (REPORT_APPLICATION_MESSAGE / OpLog).
  [[nodiscard]] const std::vector<std::string>& console(PartitionId id) const;

  /// Human-readable module status: per-partition mode, window usage and
  /// per-process statistics, plus HM and scheduler summaries. Integrator
  /// observability; used by the examples.
  [[nodiscard]] std::string status_report();

  /// (Re)initialise a partition: cold/warm start, run its init code
  /// (create objects + processes, start them) and enter NORMAL mode.
  void init_partition(PartitionId id, bool cold);

  /// Start a (dormant) process by name -- how examples/tests "inject" the
  /// faulty process of the paper's prototype (Sect. 6). Returns false when
  /// the process does not exist or is not dormant.
  bool start_process_by_name(PartitionId id, std::string_view name);

  // --- remote communication wiring (used by World) ---
  /// Deliver a message arriving from the bus to a destination port.
  void deliver_remote(PartitionId partition, const std::string& port,
                      const ipc::Message& message, ipc::ChannelKind kind);
  /// Hook invoked when a local channel has a remote destination.
  std::function<void(const ipc::RemotePortRef&, const ipc::Message&,
                     ipc::ChannelKind)>
      remote_send;

 private:
  friend class Executor;
  struct PartitionRuntime {
    std::unique_ptr<pal::Pal> pal;
    std::unique_ptr<apex::Apex> apex;
    std::vector<std::string> console_lines;
  };
  struct Core {
    pmk::PartitionScheduler scheduler;
    std::unique_ptr<pmk::PartitionDispatcher> dispatcher;
  };

  void wire_partition(PartitionId id);
  void apply_pending_change_action(PartitionId id);
  void step_active_partition(PartitionId id, Ticks elapsed);
  /// Walk the span recorder's causal caches backwards from a just-detected
  /// deadline miss and attach the root-cause chain (Algorithm 3 hook).
  void build_miss_anomaly(PartitionId id, ProcessId pid, Ticks deadline,
                          Ticks detected_at);
  /// Cumulative totals for the online plane at the end of the current tick
  /// (direct layer/registry reads -- cheaper and snapshot-neutral, so
  /// metrics snapshots stay byte-identical with the plane on or off).
  [[nodiscard]] telemetry::OnlineSample build_online_sample() const;

  ModuleConfig config_;
  // Declared before every consumer: label symbols must outlive the trace,
  // the span recorder and anything retaining InternedStrings from them.
  telemetry::StringArena arena_;
  util::Trace trace_;
  telemetry::MetricsRegistry metrics_;
  // Mutable: the warp scan (const warp_headroom()) carries a profiler
  // scope; host-time accounting is not module state.
  mutable telemetry::HostProfiler profiler_;
  telemetry::SpanRecorder spans_;
  std::unique_ptr<telemetry::OnlinePlane> online_;
  hal::Machine machine_;
  pmk::SpatialManager spatial_;
  ipc::Router router_;
  hm::HealthMonitor health_;
  std::vector<pmk::PartitionControlBlock> pcbs_;
  std::vector<Core> cores_;
  std::vector<std::size_t> core_affinity_;  // partition value -> core index
  std::vector<PartitionRuntime> partitions_;
  bool stopped_{false};
  bool time_warp_{true};
  WarpStats warp_stats_;
  TickHook* tick_hook_{nullptr};
};

}  // namespace air::system
