// The World's worker pool is the shared util::WorkerPool (hoisted in PR 10
// so the schedulability batch service can reuse it from the model layer;
// see util/worker_pool.hpp for the claiming/determinism contract). This
// alias preserves the historical system-layer spelling.
#pragma once

#include "util/worker_pool.hpp"

namespace air::system {

using WorkerPool = util::WorkerPool;

}  // namespace air::system
