// Build-type self-description (the "Release contract", DESIGN.md §11).
//
// Every perf number this repo records -- BENCH_*.json baselines, the warp
// speedup, flight-report ticks/s -- is only meaningful when measured from an
// optimised Release tree. These helpers let binaries say which tree they
// came from, so reports and bench JSONs are self-incriminating instead of
// silently mixing debug and Release timings.
#pragma once

namespace air::system {

/// CMAKE_BUILD_TYPE the binary was configured with ("unset" when the tree
/// was configured without one, i.e. no -O level at all).
[[nodiscard]] const char* build_type();

/// True only for CMAKE_BUILD_TYPE=Release -- the one configuration whose
/// timings are comparable to the checked-in bench baselines.
[[nodiscard]] bool release_build();

/// True when the tree was configured with interprocedural optimisation
/// (CMAKE_INTERPROCEDURAL_OPTIMIZATION), which the bench harness enables.
[[nodiscard]] bool lto_build();

}  // namespace air::system
