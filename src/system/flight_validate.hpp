// Differential flight validation: close the loop between the batch
// schedulability service (src/model/batch.hpp) and the simulator.
//
// A verdict is a *claim* about flight behaviour; this module checks the
// claim by actually flying candidates:
//
//  - Soundness: every analysis-accepted candidate must produce zero
//    deadline misses -- on all four execution drivers (per-tick Module,
//    warped Module, World lockstep, World epochs with a worker pool), so
//    the oracle simultaneously re-checks the drivers' equivalence contract.
//
//  - Necessity: a *definite* reject (long-run demand above supply,
//    BatchVerdict::definite) must exhibit the predicted miss in flight.
//    Conservative rejects (eq. (14) fixpoint above D, demand below supply)
//    are legitimately allowed to fly clean and are not sampled.
//
// The same harness powers the mutation self-test: an intentionally unsound
// analysis variant (AnalysisOptions::supply_bonus) must be flagged by the
// differential oracle, proving the validation pipeline can actually catch
// a broken analysis -- not just agree with a correct one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/batch.hpp"
#include "system/module_config.hpp"

namespace air::system {

/// The four execution drivers with one observable-behaviour contract.
enum class FlightDriver : std::uint8_t {
  kPerTick,   // Module, time warp off: the reference tick loop
  kWarped,    // Module, next-event time warp on
  kLockstep,  // World::run_lockstep (per-tick world reference)
  kParallel,  // World::run epoch driver, worker pool of 2
};

inline constexpr FlightDriver kAllFlightDrivers[] = {
    FlightDriver::kPerTick, FlightDriver::kWarped, FlightDriver::kLockstep,
    FlightDriver::kParallel};

[[nodiscard]] std::string_view to_string(FlightDriver driver);

struct FlightOptions {
  /// Flight horizon in major time frames.
  Ticks mtfs{20};
  /// Fly inside a switched-TDMA-bus World with chatter peer modules
  /// exchanging frames across a switch hop: validates that the verdicts
  /// survive network load on the shared world (temporal isolation). The
  /// Module drivers then map onto world drivers (warp off/on).
  bool switched_bus{false};
};

/// Rebuild the PST the analyzer ruled on -- the exact prepare() path of
/// BatchAnalyzer (explicit windows validated, else EDF generation).
/// nullopt = infeasible (nothing to fly).
[[nodiscard]] std::optional<model::Schedule> build_schedule(
    const model::Candidate& candidate);

/// Runnable module for a candidate: each modelled process becomes
/// compute(wcet - 1) + PERIODIC_WAIT (the completing service call costs the
/// final tick -- the WCET idiom the analysis models), deadline misses are
/// HM-ignored so the flight keeps going while the trace records them.
[[nodiscard]] ModuleConfig flight_config(const model::Candidate& candidate,
                                         const model::Schedule& schedule);

/// Fly `candidate` under one driver; returns the deadline-miss count
/// recorded by the candidate module's trace.
[[nodiscard]] std::uint64_t fly_candidate(const model::Candidate& candidate,
                                          const model::Schedule& schedule,
                                          FlightDriver driver,
                                          const FlightOptions& options = {});

struct DifferentialOptions {
  /// Sample caps (evenly strided over the population, deterministic).
  std::size_t max_accepted{16};
  std::size_t max_rejected{8};
  Ticks accepted_mtfs{20};
  /// Longer horizon for rejects: the predicted miss may need backlog.
  Ticks rejected_mtfs{40};
  bool switched_bus{false};
};

struct DifferentialReport {
  std::uint64_t accepted_population{0};  // schedulable verdicts in the batch
  std::uint64_t rejected_population{0};  // definite rejects in the batch
  std::uint64_t accepted_flown{0};
  std::uint64_t rejected_flown{0};
  std::uint64_t flights{0};  // individual (candidate, driver) runs
  /// One line per violated claim, naming candidate, driver and miss count
  /// (the reproducer: candidate id + driver fully determine the flight).
  std::vector<std::string> divergences;
  /// Candidate ids behind `divergences`, for reproducer export.
  std::vector<std::uint64_t> divergent_ids;

  [[nodiscard]] bool ok() const { return divergences.empty(); }
  [[nodiscard]] std::string to_text() const;
};

/// Fly the differential oracle over a batch: `verdicts` must be the
/// index-aligned output of BatchAnalyzer::analyze on `candidates`.
[[nodiscard]] DifferentialReport validate_differential(
    const std::vector<model::Candidate>& candidates,
    const std::vector<model::BatchVerdict>& verdicts,
    const DifferentialOptions& options = {});

struct SelftestReport {
  std::uint64_t candidates{0};
  /// Accepted by the mutated analysis, definitely rejected by the sound one.
  std::uint64_t flipped{0};
  std::uint64_t flown{0};
  std::uint64_t divergent{0};  // flipped candidates that missed in flight

  /// The mutation was detected: some unsoundly-accepted candidate actually
  /// missed its deadline in flight.
  [[nodiscard]] bool caught() const { return flipped > 0 && divergent > 0; }
  [[nodiscard]] std::string to_text() const;
};

/// Mutation self-test (air-schedule --selftest): run the batch pipeline
/// with a deliberately unsound analysis (claims `supply_bonus` free ticks
/// of supply in every inversion) and verify differential flight validation
/// flags the divergence.
[[nodiscard]] SelftestReport schedulability_selftest(std::size_t count = 96,
                                                     std::uint64_t seed = 7);

}  // namespace air::system
