#include "system/flight_validate.hpp"

#include <algorithm>
#include <sstream>

#include "system/world.hpp"
#include "util/assert.hpp"

namespace air::system {

namespace {

using pos::ScriptBuilder;

/// Chatter peer for switched-bus flights: one beacon partition writing a
/// sampling frame to its ring neighbour every 400 ticks (the constellation
/// satellite, trimmed). Its traffic crosses a switch hop; the candidate
/// module must be unaffected (temporal isolation).
ModuleConfig chatter_peer(int id, int peer) {
  ModuleConfig config;
  config.id = ModuleId{id};
  config.name = "peer" + std::to_string(id);
  config.memory_bytes = 256u << 10;
  config.telemetry.flight_recorder_capacity = 64;
  config.telemetry.spans_capacity = 256;
  constexpr Ticks kMtf = 500;

  PartitionConfig partition;
  partition.name = "chatter";
  partition.sampling_ports.push_back(
      {"OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
  partition.sampling_ports.push_back(
      {"IN", ipc::PortDirection::kDestination, 64, kInfiniteTime});
  ProcessConfig beacon;
  beacon.attrs.name = "beacon";
  beacon.attrs.priority = 20;
  beacon.attrs.script = ScriptBuilder{}
                            .sampling_write(0, "beacon")
                            .sampling_read(1)
                            .timed_wait(400)
                            .build();
  partition.processes.push_back(std::move(beacon));
  config.partitions.push_back(std::move(partition));

  ipc::ChannelConfig link;
  link.id = ChannelId{0};
  link.kind = ipc::ChannelKind::kSampling;
  link.source = {PartitionId{0}, "OUT"};
  link.remote_destinations = {{ModuleId{peer}, PartitionId{0}, "IN"}};
  config.channels.push_back(std::move(link));

  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = kMtf;
  schedule.requirements = {{PartitionId{0}, kMtf, kMtf}};
  schedule.windows = {{PartitionId{0}, 0, kMtf}};
  config.schedules = {schedule};
  return config;
}

/// Switched topology: candidate (station 0) and peer 1 share a switch,
/// peer 2 sits behind a hop, so chatter frames traverse the switch fabric.
net::BusConfig switched_bus_config() {
  net::BusConfig bus;
  bus.slot_length = 1;
  bus.frames_per_slot = 4;
  bus.propagation_delay = 2;
  bus.stations_per_switch = 2;
  bus.switch_hop_delay = 2;
  return bus;
}

[[nodiscard]] std::uint64_t miss_count(const Module& module) {
  return module.trace().count(util::EventKind::kDeadlineMiss);
}

}  // namespace

std::string_view to_string(FlightDriver driver) {
  switch (driver) {
    case FlightDriver::kPerTick: return "per-tick";
    case FlightDriver::kWarped: return "warped";
    case FlightDriver::kLockstep: return "lockstep";
    case FlightDriver::kParallel: return "parallel";
  }
  return "?";
}

std::optional<model::Schedule> build_schedule(
    const model::Candidate& candidate) {
  if (candidate.windows.empty()) {
    model::GeneratorInput input;
    input.requirements = candidate.requirements;
    input.mtf = candidate.mtf;
    input.name = candidate.name.empty() ? "generated" : candidate.name;
    return model::generate_schedule(input);
  }
  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.name = candidate.name;
  schedule.mtf = candidate.mtf > 0
                     ? candidate.mtf
                     : model::lcm_of_periods(candidate.requirements);
  schedule.requirements = candidate.requirements;
  schedule.windows = candidate.windows;
  std::sort(schedule.windows.begin(), schedule.windows.end(),
            [](const model::Window& a, const model::Window& b) {
              return a.offset < b.offset;
            });
  if (schedule.mtf <= 0 || !model::validate_schedule(schedule).ok()) {
    return std::nullopt;
  }
  return schedule;
}

ModuleConfig flight_config(const model::Candidate& candidate,
                           const model::Schedule& schedule) {
  ModuleConfig config;
  config.id = ModuleId{0};
  config.name = candidate.name.empty() ? "candidate" : candidate.name;
  config.schedules = {schedule};

  hm::HmTable table;
  table.set(hm::ErrorCode::kDeadlineMissed, hm::ErrorLevel::kProcess,
            hm::RecoveryAction::kIgnore);
  config.module_hm_table = table;

  // Partition slots are indexed by PartitionId value; cover every id the
  // windows reference even when the candidate models only some of them.
  std::int32_t max_id = -1;
  for (const model::PartitionModel& pm : candidate.partitions) {
    max_id = std::max(max_id, pm.id.value());
  }
  for (const model::Window& w : schedule.windows) {
    max_id = std::max(max_id, w.partition.value());
  }
  config.partitions.resize(static_cast<std::size_t>(max_id + 1));
  for (std::size_t p = 0; p < config.partitions.size(); ++p) {
    config.partitions[p].name = "P" + std::to_string(p);
    config.partitions[p].hm_table = table;
  }

  for (const model::PartitionModel& pm : candidate.partitions) {
    PartitionConfig& partition =
        config.partitions[static_cast<std::size_t>(pm.id.value())];
    if (!pm.name.empty()) partition.name = pm.name;
    for (const model::ProcessModel& proc : pm.processes) {
      if (proc.wcet <= 0 || proc.period <= 0 ||
          proc.period == kInfiniteTime || !proc.periodic) {
        continue;  // flight models periodic compute-only processes
      }
      ProcessConfig process;
      process.attrs.name = proc.name;
      process.attrs.period = proc.period;
      process.attrs.time_capacity = proc.deadline;
      process.attrs.priority = proc.priority;
      // WCET = compute + 1 tick for the completing PERIODIC_WAIT.
      process.attrs.script = ScriptBuilder{}
                                 .compute(std::max<Ticks>(1, proc.wcet - 1))
                                 .periodic_wait()
                                 .build();
      partition.processes.push_back(std::move(process));
    }
  }
  config.trace_enabled = true;
  return config;
}

std::uint64_t fly_candidate(const model::Candidate& candidate,
                            const model::Schedule& schedule,
                            FlightDriver driver,
                            const FlightOptions& options) {
  ModuleConfig config = flight_config(candidate, schedule);
  const Ticks horizon = options.mtfs * schedule.mtf;

  const bool in_world = options.switched_bus ||
                        driver == FlightDriver::kLockstep ||
                        driver == FlightDriver::kParallel;
  if (!in_world) {
    Module module(std::move(config));
    module.set_time_warp(driver == FlightDriver::kWarped);
    module.run(horizon);
    return miss_count(module);
  }

  World world(options.switched_bus ? switched_bus_config()
                                   : net::BusConfig{});
  Module& module = world.add_module(std::move(config));
  if (options.switched_bus) {
    world.add_module(chatter_peer(1, 2));
    world.add_module(chatter_peer(2, 1));
  }
  // Module drivers map onto world drivers: per-tick = lockstep with the
  // candidate's warp engine off, warped = single-lane epochs.
  module.set_time_warp(driver != FlightDriver::kPerTick);
  switch (driver) {
    case FlightDriver::kPerTick:
    case FlightDriver::kLockstep:
      world.run_lockstep(horizon);
      break;
    case FlightDriver::kWarped:
      world.run(horizon);
      break;
    case FlightDriver::kParallel:
      world.set_workers(2);
      world.run(horizon);
      break;
  }
  return miss_count(module);
}

namespace {

/// Evenly strided deterministic sample of `population` indices, at most
/// `cap` of them (first element always included).
std::vector<std::size_t> strided_sample(const std::vector<std::size_t>& population,
                                        std::size_t cap) {
  if (population.size() <= cap || cap == 0) return population;
  std::vector<std::size_t> picked;
  picked.reserve(cap);
  const std::size_t stride = population.size() / cap;
  for (std::size_t i = 0; i < population.size() && picked.size() < cap;
       i += stride) {
    picked.push_back(population[i]);
  }
  return picked;
}

}  // namespace

DifferentialReport validate_differential(
    const std::vector<model::Candidate>& candidates,
    const std::vector<model::BatchVerdict>& verdicts,
    const DifferentialOptions& options) {
  AIR_ASSERT_MSG(candidates.size() == verdicts.size(),
                 "verdicts must be index-aligned with candidates");
  DifferentialReport report;

  std::vector<std::size_t> accepted;
  std::vector<std::size_t> rejected;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (verdicts[i].verdict == model::Verdict::kSchedulable) {
      accepted.push_back(i);
    } else if (verdicts[i].verdict == model::Verdict::kUnschedulable &&
               verdicts[i].definite) {
      rejected.push_back(i);
    }
  }
  report.accepted_population = accepted.size();
  report.rejected_population = rejected.size();

  const auto diverge = [&](std::size_t i, FlightDriver driver,
                           std::uint64_t misses, std::string_view claim) {
    std::ostringstream os;
    os << "candidate " << verdicts[i].id << " (" << verdicts[i].name
       << "): " << claim << " but " << to_string(driver) << " flight saw "
       << misses << " deadline miss(es)";
    report.divergences.push_back(os.str());
    report.divergent_ids.push_back(verdicts[i].id);
  };

  // Soundness: accepted => miss-free, on every driver.
  for (std::size_t i : strided_sample(accepted, options.max_accepted)) {
    const auto schedule = build_schedule(candidates[i]);
    AIR_ASSERT_MSG(schedule.has_value(),
                   "accepted candidate must have a valid PST");
    ++report.accepted_flown;
    for (FlightDriver driver : kAllFlightDrivers) {
      const std::uint64_t misses =
          fly_candidate(candidates[i], *schedule, driver,
                        {options.accepted_mtfs, options.switched_bus});
      ++report.flights;
      if (misses != 0) {
        diverge(i, driver, misses, "analysis accepted (schedulable)");
      }
    }
  }

  // Necessity: definite rejects => the predicted miss shows up, on every
  // driver (they must agree on the miss, not just on clean flights).
  for (std::size_t i : strided_sample(rejected, options.max_rejected)) {
    const auto schedule = build_schedule(candidates[i]);
    AIR_ASSERT_MSG(schedule.has_value(),
                   "definite reject must still have a valid PST");
    ++report.rejected_flown;
    for (FlightDriver driver : kAllFlightDrivers) {
      const std::uint64_t misses =
          fly_candidate(candidates[i], *schedule, driver,
                        {options.rejected_mtfs, options.switched_bus});
      ++report.flights;
      if (misses == 0) {
        diverge(i, driver, misses,
                "analysis definitely rejected (demand > supply)");
      }
    }
  }
  return report;
}

std::string DifferentialReport::to_text() const {
  std::ostringstream os;
  os << "differential: " << accepted_flown << "/" << accepted_population
     << " accepted and " << rejected_flown << "/" << rejected_population
     << " definite-rejected candidates flown (" << flights << " flights): "
     << (ok() ? "OK" : "DIVERGENT") << '\n';
  for (const std::string& line : divergences) os << "  " << line << '\n';
  return os.str();
}

SelftestReport schedulability_selftest(std::size_t count,
                                       std::uint64_t seed) {
  SelftestReport report;
  model::CandidateSpec spec;
  spec.count = count;
  spec.seed = seed;
  spec.overload_fraction = 0.4;  // plenty of definite rejects to flip
  const auto candidates = model::generate_candidates(spec);
  report.candidates = candidates.size();

  model::BatchOptions sound_options;
  model::BatchAnalyzer sound(sound_options);
  model::BatchOptions weak_options;
  // The mutation: pretend every inversion has 48 free ticks of supply --
  // an off-by-a-window-sized-chunk unsound analysis.
  weak_options.analysis.supply_bonus = 48;
  model::BatchAnalyzer weak(weak_options);

  const auto sound_verdicts = sound.analyze(candidates);
  const auto weak_verdicts = weak.analyze(candidates);

  constexpr std::size_t kMaxFlights = 8;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const bool flipped =
        weak_verdicts[i].verdict == model::Verdict::kSchedulable &&
        sound_verdicts[i].verdict == model::Verdict::kUnschedulable &&
        sound_verdicts[i].definite;
    if (!flipped) continue;
    ++report.flipped;
    if (report.flown >= kMaxFlights) continue;
    const auto schedule = build_schedule(candidates[i]);
    AIR_ASSERT(schedule.has_value());
    ++report.flown;
    if (fly_candidate(candidates[i], *schedule, FlightDriver::kWarped,
                      {.mtfs = 40}) > 0) {
      ++report.divergent;
    }
  }
  return report;
}

std::string SelftestReport::to_text() const {
  std::ostringstream os;
  os << "selftest: " << candidates << " candidates, " << flipped
     << " unsoundly accepted by the mutated analysis, " << flown
     << " flown, " << divergent << " missed in flight: "
     << (caught() ? "mutation CAUGHT (pipeline works)"
                  : "mutation NOT caught (pipeline broken)")
     << '\n';
  return os.str();
}

}  // namespace air::system
