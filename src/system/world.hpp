// Multi-module world: several AIR modules in lockstep on a shared TDMA bus,
// for experiments with physically separated (remote) partitions.
//
// Two drivers with byte-identical observable behaviour (traces, metrics,
// spans, APEX-visible state -- enforced by tests/test_parallel_world.cpp):
//
//  - run_lockstep(): the reference semantics. Per tick: every module
//    executes tick_once() in attach order, outbound frames are injected
//    into the bus, the bus ticks. Quiescent spans are warped in lockstep.
//
//  - run(): the epoch driver. Per epoch it computes a safe horizon E (no
//    bus delivery can land before the epoch's final tick, and no module
//    can emit a frame that would), advances every module independently by
//    E ticks -- on the worker pool when set_workers() enabled it -- while
//    remote sends are staged into per-module queues, then merges the
//    staged frames into the bus in (tick, module attach order) and replays
//    the bus across the epoch. Staging keeps TDMA arbitration and bus span
//    numbering independent of thread interleaving. See DESIGN.md section 8.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/bus.hpp"
#include "system/module.hpp"
#include "system/worker_pool.hpp"

namespace air::system {

class World {
 public:
  explicit World(net::BusConfig bus_config = {}) : bus_(bus_config) {
    // The bus gets its own recorder (origin 0xFFFF) so transit spans are
    // deterministically numbered regardless of module count; export it
    // alongside the per-module streams for cross-module flow stitching.
    // Its labels intern into a World-owned arena (transit spans are
    // unlabelled today, but the storage contract matches the modules').
    bus_spans_.set_arena(&arena_);
    bus_spans_.set_origin(telemetry::SpanRecorder::kBusOrigin);
    bus_.set_spans(&bus_spans_);
    profiler_.set_arena_probe(&arena_);
  }
  ~World();

  /// Construct and attach a module. The module's id must be unique.
  Module& add_module(ModuleConfig config);

  /// Advance every module and the bus by `ticks` (epoch driver; parallel
  /// across modules when set_workers() gave the pool more than one lane).
  void run(Ticks ticks);

  /// Advance by `ticks` with the reference per-tick lockstep semantics.
  /// run() is byte-identical to this; tests use it as the oracle.
  void run_lockstep(Ticks ticks);

  /// Size the worker pool: 1 = in-process epochs (default), N = up to N
  /// concurrent module lanes, 0 = one lane per hardware thread. Takes
  /// effect at the next run(); byte-identical output for every setting.
  void set_workers(std::size_t workers);
  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Execution accounting for the drivers (deterministic; not part of the
  /// equivalence contract, exactly like Module::WarpStats).
  struct Stats {
    std::uint64_t epochs{0};           // epoch rounds executed by run()
    std::uint64_t epoch_ticks{0};      // world ticks advanced via epochs
    std::uint64_t module_ticks{0};     // per-module ticks inside epochs
    std::uint64_t frames_merged{0};    // staged frames injected at barriers
    std::uint64_t lockstep_ticks{0};   // per-tick steps in run_lockstep()
    std::uint64_t lockstep_warped{0};  // lockstep-warped ticks
    std::uint64_t lockstep_spans{0};   // lockstep warp spans
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// World section of the integrator status report: module count, epoch
  /// totals, mean epoch length, worker-pool feed ratio.
  [[nodiscard]] std::string status_report() const;

  /// Enable the online bus plane: digest windows over the TDMA bus (per
  /// station and global counters) plus the bus-side watchdogs (saturation,
  /// backlog growth, span pressure). Call before the first run; module
  /// planes are configured per module via TelemetryConfig.online.
  void enable_online(telemetry::OnlineOptions options);
  [[nodiscard]] telemetry::BusPlane* bus_plane() { return bus_plane_.get(); }
  [[nodiscard]] const telemetry::BusPlane* bus_plane() const {
    return bus_plane_.get();
  }

  /// Enable the World-level host profiler (epoch driver, merge barrier,
  /// bus pump). Per-module trees live in each module's own profiler; this
  /// one attributes the cross-module machinery. `stride` as in
  /// TelemetryConfig::profiler_stride (sampling unit: one epoch/tick round).
  void enable_profiler(
      std::uint32_t stride = telemetry::HostProfiler::kDefaultStride) {
    profiler_.enable(true);
    profiler_.set_stride(stride);
  }
  [[nodiscard]] telemetry::HostProfiler& profiler() { return profiler_; }
  [[nodiscard]] const telemetry::HostProfiler& profiler() const {
    return profiler_;
  }
  /// Arena backing the bus recorder's labels (status_report stats).
  [[nodiscard]] const telemetry::StringArena& arena() const { return arena_; }

  [[nodiscard]] Ticks now() const { return now_; }
  [[nodiscard]] net::Bus& bus() { return bus_; }
  /// Span recorder for bus transit legs (kMsgBusTransit).
  [[nodiscard]] telemetry::SpanRecorder& bus_spans() { return bus_spans_; }
  [[nodiscard]] const telemetry::SpanRecorder& bus_spans() const {
    return bus_spans_;
  }
  [[nodiscard]] Module& module(std::size_t index) { return *modules_[index]; }
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }

 private:
  /// A remote_send captured during module execution, to be injected into
  /// the bus at the epoch barrier (or at the end of a lockstep tick).
  struct StagedFrame {
    Ticks tick{0};  // module time of the send
    ipc::RemotePortRef dest;
    ipc::Message message;
    ipc::ChannelKind kind{ipc::ChannelKind::kSampling};
  };

  /// Safe epoch length in [1, limit]: no bus delivery (from in-flight or
  /// queued frames, nor from anything a module could send this epoch) can
  /// land before the epoch's final tick. Scans only live modules.
  [[nodiscard]] Ticks epoch_horizon(Ticks limit) const;

  /// Demote live_ bits for modules that stopped since the last refresh
  /// (stopping is monotone, so a cleared bit never needs rechecking).
  void refresh_live();

  /// Inject the staged frames of epoch [start, start + ticks) in (tick,
  /// module attach order) and replay the bus across the span.
  void merge_and_run_bus(Ticks start, Ticks ticks);

  /// Lockstep warp span in [0, limit]: > 0 only when every module is
  /// quiescent for the span and the bus would neither transmit nor
  /// deliver. Caches the member that forced stepping (module index, or
  /// kBusBlocked) so steady stepping rechecks one entity instead of
  /// rescanning every module per tick.
  [[nodiscard]] Ticks lockstep_headroom(Ticks limit);

  /// Cumulative bus totals for the online bus plane, rebuilt in place into
  /// the member scratch (a digest-window sample at constellation scale must
  /// not allocate). Reads only bus and bus-recorder state, which every
  /// driver mutates identically -- the reason bus digests are
  /// byte-identical under lockstep and epochs.
  [[nodiscard]] const telemetry::BusSample& sample_bus() const;

  static constexpr std::size_t kUnblocked = static_cast<std::size_t>(-1);
  static constexpr std::size_t kBusBlocked = static_cast<std::size_t>(-2);

  telemetry::StringArena arena_;  // outlives bus_spans_ (declared first)
  telemetry::HostProfiler profiler_;
  telemetry::SpanRecorder bus_spans_;
  std::unique_ptr<telemetry::BusPlane> bus_plane_;
  net::Bus bus_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<std::vector<StagedFrame>> staged_;  // one queue per module
  // --- constellation hot columns (DESIGN.md §13) ---
  // Per-module per-tick state split out of the heap-owned Module rows so
  // the tick loops and the epoch driver's horizon scans walk compact
  // arrays, not a pointer chase over unique_ptrs:
  std::vector<Module*> mods_;        // flat pointers, attach order
  std::vector<std::uint8_t> live_;   // 1 = not stopped (monotone 1 -> 0)
  /// 1 = staged_[i] is non-empty. Byte i is written only by the lane
  /// advancing module i (its own staging queue), so the column is safe
  /// under the pooled epoch driver and lets the merge/injection loops skip
  /// idle modules with a byte scan instead of touching every deque.
  std::vector<std::uint8_t> staged_dirty_;
  std::size_t live_count_{0};
  std::vector<std::size_t> merge_list_;    // scratch: dirty module indices
  std::vector<std::size_t> merge_cursor_;  // scratch, parallel to merge_list_
  mutable std::vector<net::StationStats> station_scratch_;
  mutable telemetry::BusSample bus_sample_;  // sample_bus() storage
  std::unique_ptr<WorkerPool> pool_;
  std::size_t workers_{1};
  std::size_t warp_blocker_{kUnblocked};
  Stats stats_;
  Ticks now_{0};
};

}  // namespace air::system
