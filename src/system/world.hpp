// Multi-module world: several AIR modules in lockstep on a shared TDMA bus,
// for experiments with physically separated (remote) partitions.
#pragma once

#include <memory>
#include <vector>

#include "net/bus.hpp"
#include "system/module.hpp"

namespace air::system {

class World {
 public:
  explicit World(net::BusConfig bus_config = {}) : bus_(bus_config) {}

  /// Construct and attach a module. The module's id must be unique.
  Module& add_module(ModuleConfig config);

  /// Advance every module and the bus by `ticks` (lockstep).
  void run(Ticks ticks);

  [[nodiscard]] Ticks now() const { return now_; }
  [[nodiscard]] net::Bus& bus() { return bus_; }
  [[nodiscard]] Module& module(std::size_t index) { return *modules_[index]; }
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }

 private:
  net::Bus bus_;
  std::vector<std::unique_ptr<Module>> modules_;
  Ticks now_{0};
};

}  // namespace air::system
