// Multi-module world: several AIR modules in lockstep on a shared TDMA bus,
// for experiments with physically separated (remote) partitions.
#pragma once

#include <memory>
#include <vector>

#include "net/bus.hpp"
#include "system/module.hpp"

namespace air::system {

class World {
 public:
  explicit World(net::BusConfig bus_config = {}) : bus_(bus_config) {
    // The bus gets its own recorder (origin 0xFFFF) so transit spans are
    // deterministically numbered regardless of module count; export it
    // alongside the per-module streams for cross-module flow stitching.
    bus_spans_.set_origin(telemetry::SpanRecorder::kBusOrigin);
    bus_.set_spans(&bus_spans_);
  }

  /// Construct and attach a module. The module's id must be unique.
  Module& add_module(ModuleConfig config);

  /// Advance every module and the bus by `ticks` (lockstep).
  void run(Ticks ticks);

  [[nodiscard]] Ticks now() const { return now_; }
  [[nodiscard]] net::Bus& bus() { return bus_; }
  /// Span recorder for bus transit legs (kMsgBusTransit).
  [[nodiscard]] telemetry::SpanRecorder& bus_spans() { return bus_spans_; }
  [[nodiscard]] const telemetry::SpanRecorder& bus_spans() const {
    return bus_spans_;
  }
  [[nodiscard]] Module& module(std::size_t index) { return *modules_[index]; }
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }

 private:
  telemetry::SpanRecorder bus_spans_;
  net::Bus bus_;
  std::vector<std::unique_ptr<Module>> modules_;
  Ticks now_{0};
};

}  // namespace air::system
