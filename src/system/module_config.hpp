// Integration-time configuration of an AIR module (programmatic form).
//
// This mirrors what ARINC 653 puts in the integrator's XML configuration
// files: partitions and their POS, processes, intrapartition objects, ports,
// channels, HM tables, and the set of partition scheduling tables. The JSON
// loader in src/config produces exactly this structure.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "hm/health_monitor.hpp"
#include "ipc/router.hpp"
#include "model/model.hpp"
#include "pal/pal.hpp"
#include "pmk/partition.hpp"
#include "pmk/spatial.hpp"
#include "pos/process.hpp"
#include "telemetry/online.hpp"
#include "telemetry/profiler.hpp"

namespace air::system {

struct ProcessConfig {
  pos::ProcessAttributes attrs;
  /// Started by the partition init code (becomes ready on NORMAL mode).
  bool auto_start{true};
};

struct SamplingPortConfig {
  std::string name;
  ipc::PortDirection direction{ipc::PortDirection::kSource};
  std::size_t max_message_bytes{64};
  Ticks refresh_period{kInfiniteTime};
};

struct QueuingPortConfig {
  std::string name;
  ipc::PortDirection direction{ipc::PortDirection::kSource};
  std::size_t max_message_bytes{64};
  std::size_t capacity{8};
  ipc::QueuingDiscipline discipline{ipc::QueuingDiscipline::kFifo};
};

struct BufferConfig {
  std::string name;
  std::size_t max_message_bytes{64};
  std::size_t capacity{8};
  ipc::QueuingDiscipline discipline{ipc::QueuingDiscipline::kFifo};
};

struct BlackboardConfig {
  std::string name;
  std::size_t max_message_bytes{64};
};

struct SemaphoreConfig {
  std::string name;
  std::int32_t initial{1};
  std::int32_t maximum{1};
  ipc::QueuingDiscipline discipline{ipc::QueuingDiscipline::kFifo};
};

struct EventConfig {
  std::string name;
};

struct PartitionConfig {
  std::string name;
  bool system_partition{false};
  /// POS kernel flavour: "rt" (RTOS) or "generic" (non-real-time).
  std::string pos_kind{"rt"};
  pal::RegistryKind deadline_registry{pal::RegistryKind::kLinkedList};
  pmk::PartitionMemoryConfig memory;

  std::vector<ProcessConfig> processes;
  std::vector<SamplingPortConfig> sampling_ports;
  std::vector<QueuingPortConfig> queuing_ports;
  std::vector<BufferConfig> buffers;
  std::vector<BlackboardConfig> blackboards;
  std::vector<SemaphoreConfig> semaphores;
  std::vector<EventConfig> events;

  /// Error handler process body; empty script = no handler created.
  pos::Script error_handler;

  /// Partition HM table (empty = module defaults).
  hm::HmTable hm_table;
};

/// Scheduling configuration of one processor core (multicore extension --
/// the paper's future work (iv): parallel partition time windows). Each
/// core runs its own set of PSTs; a partition may appear in the schedules
/// of exactly one core (static core affinity), which is what keeps the
/// two-level scheduling argument intact per core.
struct CoreConfig {
  std::vector<model::Schedule> schedules;
  ScheduleId initial_schedule{ScheduleId{0}};
};

/// Observability configuration (src/telemetry). Metrics are deterministic
/// and on by default; the host-side tick profiler is off by default; a
/// flight-recorder capacity of 0 keeps the unbounded trace of the seed.
struct TelemetryConfig {
  bool metrics_enabled{true};
  bool profiler_enabled{false};
  /// Host profiler sampling stride: measure one tick in N. The default
  /// keeps always-on overhead inside the bench_telemetry mode 8 gate;
  /// air-record --profile sets 1 for exact offline capture.
  std::uint32_t profiler_stride{telemetry::HostProfiler::kDefaultStride};
  /// Flight recorder: bounded trace storage. 0 = unbounded vector.
  std::size_t flight_recorder_capacity{0};
  /// Separate retention for critical events (deadline misses, HM reports,
  /// schedule switches) so debug floods cannot evict the evidence.
  std::size_t flight_recorder_critical_capacity{256};
  /// Causal span layer: windows, jobs, message lifetimes, HM handlers,
  /// root-cause chains on deadline misses. Deterministic; off = layers hold
  /// a null recorder pointer and pay nothing.
  bool spans_enabled{true};
  /// Retained closed spans. 0 = unbounded; otherwise newest win and
  /// evictions are counted exactly (SpanRecorder::dropped_spans).
  std::size_t spans_capacity{0};
  /// In-flight observability plane: windowed digests + online SLO
  /// watchdogs (src/telemetry/online.hpp). Off by default; requires
  /// metrics_enabled (the digests sample the registry).
  telemetry::OnlineOptions online;
};

struct ModuleConfig {
  std::string name{"module"};
  ModuleId id{ModuleId{0}};
  std::size_t memory_bytes{16u << 20};

  std::vector<PartitionConfig> partitions;

  /// The set chi of partition scheduling tables (eq. 17); PartitionIds in
  /// the windows index into `partitions`.
  std::vector<model::Schedule> schedules;
  ScheduleId initial_schedule{ScheduleId{0}};

  /// Multicore: when non-empty, each entry describes one core and the
  /// single-core fields above are ignored. Schedule ids must be unique
  /// across cores; SET_MODULE_SCHEDULE from a partition addresses the
  /// schedules of the core hosting it.
  std::vector<CoreConfig> cores;
  /// ScheduleChangeAction per (schedule switched *to*, partition).
  std::map<std::pair<ScheduleId, PartitionId>, pmk::ScheduleChangeAction>
      change_actions;

  std::vector<ipc::ChannelConfig> channels;
  hm::HmTable module_hm_table;

  /// Validate every schedule against eqs. (20)-(23) at construction and
  /// abort on violation -- offline verification per Sect. 3/5.
  bool validate{true};
  /// Next-event time warp: when the module is quiescent, run()/run_until()
  /// fast-forward to the next interesting tick in O(1) instead of stepping.
  /// Observably equivalent to per-tick execution (metrics, traces and
  /// APEX-visible state are byte-identical); disable to force stepping.
  bool time_warp{true};
  /// Record events in the trace (disable for hot-path benches).
  bool trace_enabled{true};
  /// Metrics registry, tick profiler and flight recorder setup.
  TelemetryConfig telemetry;
};

}  // namespace air::system
