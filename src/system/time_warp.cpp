// Next-event time-warp engine.
//
// The paper's Algorithm 1 is built so the frequent case of the clock-tick
// ISR does almost nothing ("two computations", Sect. 4.3). The simulation
// exploits the same property wholesale: when a tick provably does nothing
// but increment counters -- no preemption point, no runnable process, no
// timer wake, no deadline edge, no channel movement, no telemetry sample --
// the whole span of such ticks is collapsed into O(1) bulk advances.
//
// Correctness contract (asserted layer by layer, proven by the equivalence
// suite in tests/test_time_warp.cpp): executing warp_advance(n) from a
// quiescent state with n <= warp_headroom() leaves every observable bit of
// module state -- metrics snapshots, trace/flight-recorder contents, APEX
// process state -- identical to n calls of tick_once().
//
// Why schedule switches cannot be skipped: a pending SET_MODULE_SCHEDULE
// takes effect at an MTF boundary (phase 0), and every compiled table has a
// preemption point at tick 0, so the boundary *is* a preemption point.
// next_preemption_point() therefore always stops the warp at or before the
// boundary, and Algorithm 1 lines 3-7 run normally on the stepped tick.
#include <algorithm>

#include "system/module.hpp"
#include "util/assert.hpp"

namespace air::system {

Ticks Module::warp_headroom() const {
  if (stopped_) return 0;
  // The scan itself is a per-tick host cost worth attributing: run it
  // under a profiler scope even though an enabled profiler then forces
  // stepping (below) -- warping would skip ticks the profiler wants to
  // observe, changing its (intentionally non-deterministic) report.
  telemetry::HostProfiler::Scope profile_scope(
      profiler_, telemetry::ProfilePoint::kWarpScan);
  // Boot tick not executed yet: the time-0 preemption point is ahead.
  const Ticks t = cores_.front().scheduler.ticks();
  if (t < 0) return 0;
  // A queuing backlog would move a message or refresh its depth gauge.
  if (!router_.quiescent()) return 0;

  Ticks next_event = kInfiniteTime;
  for (const Core& core : cores_) {
    // A not-yet-dispatched heir means the next tick context-switches.
    if (core.scheduler.heir_partition() !=
        core.dispatcher->active_partition()) {
      return 0;
    }
    next_event = std::min(next_event, core.scheduler.next_preemption_point());

    const PartitionId active = core.dispatcher->active_partition();
    if (!active.valid()) continue;  // idle window: nothing else to consult
    const pmk::PartitionControlBlock& pcb =
        pcbs_[static_cast<std::size_t>(active.value())];
    // Non-NORMAL partitions are dispatched but not stepped (tick_once
    // skips them entirely), so they impose no constraint.
    if (pcb.mode != pmk::OperatingMode::kNormal) continue;

    const pal::Pal& p = *partitions_[static_cast<std::size_t>(active.value())]
                             .pal;
    // Runnable work: the executor would act this tick.
    if (p.kernel().ready_depth() != 0) return 0;
    // A deadline record whose slack episode has not been sampled yet:
    // the next announce writes a histogram entry, so it must be stepped.
    if (p.slack_sample_pending()) return 0;
    next_event = std::min(next_event, p.next_attention_tick());
  }

  // A tick hook (fault injector) must observe its event ticks stepped.
  if (tick_hook_ != nullptr) {
    next_event = std::min(next_event, tick_hook_->next_event(t));
  }

  // The online plane closes a digest window at the end of its boundary
  // tick; that tick must be stepped so every execution mode samples the
  // same cumulative totals at the same instant.
  if (online_ != nullptr) {
    next_event = std::min(next_event, online_->next_close_tick());
  }

  // An enabled profiler observes every stepped tick; report zero headroom
  // *after* the scan so the scan's own cost is still attributed.
  if (profiler_.enabled()) return 0;

  // Ticks t+1 .. next_event-1 are boring; the event tick itself is stepped.
  const Ticks headroom = next_event - t - 1;
  return headroom > 0 ? headroom : 0;
}

void Module::warp_advance(Ticks n) {
  if (stopped_ || n <= 0) return;

  // HAL: one clock bump of n plus a timer-interrupt raise/take pair leaves
  // the interrupt controller exactly as n per-tick raise/take pairs would.
  machine_.advance(n);
  (void)machine_.interrupts().take(hal::IrqLine::kTimer);

  // PMK: n best-case Algorithm 1 iterations (counter increments only;
  // scheduler.advance asserts no preemption point lies inside the span)
  // and n same-partition Algorithm 2 fast paths per core.
  for (Core& core : cores_) {
    core.scheduler.advance(n);
    core.dispatcher->advance_same_partition(n);
  }

  // PAL/POS: for each active NORMAL partition, one batched surrogate
  // clock-tick announce (Algorithm 3 steady state, n deadline checks) and
  // n slack ticks -- the executor would have found no runnable process.
  for (Core& core : cores_) {
    const PartitionId active = core.dispatcher->active_partition();
    if (!active.valid()) continue;
    pmk::PartitionControlBlock& pcb =
        pcbs_[static_cast<std::size_t>(active.value())];
    if (pcb.mode != pmk::OperatingMode::kNormal) continue;
    partitions_[static_cast<std::size_t>(active.value())].pal->advance_idle(
        now(), n);
    pcb.slack_ticks += n;
  }

  warp_stats_.warped_ticks += static_cast<std::uint64_t>(n);
  ++warp_stats_.warp_spans;
}

}  // namespace air::system
