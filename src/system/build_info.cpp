#include "system/build_info.hpp"

#include <string_view>

// Stamped by src/system/CMakeLists.txt from the configuring tree.
#ifndef AIR_CMAKE_BUILD_TYPE
#define AIR_CMAKE_BUILD_TYPE ""
#endif

namespace air::system {

const char* build_type() {
  return AIR_CMAKE_BUILD_TYPE[0] != '\0' ? AIR_CMAKE_BUILD_TYPE : "unset";
}

bool release_build() {
  return std::string_view{AIR_CMAKE_BUILD_TYPE} == "Release";
}

bool lto_build() {
#ifdef AIR_LTO
  return true;
#else
  return false;
#endif
}

}  // namespace air::system
