#include "system/world.hpp"

namespace air::system {

Module& World::add_module(ModuleConfig config) {
  const ModuleId id = config.id;
  modules_.push_back(std::make_unique<Module>(std::move(config)));
  Module& module = *modules_.back();

  module.remote_send = [this, id](const ipc::RemotePortRef& dest,
                                  const ipc::Message& message,
                                  ipc::ChannelKind kind) {
    bus_.send(id, dest, message, kind, now_);
  };
  bus_.attach(id, [&module](PartitionId partition, const std::string& port,
                            const ipc::Message& message,
                            ipc::ChannelKind kind) {
    module.deliver_remote(partition, port, message, kind);
  });
  return module;
}

void World::run(Ticks ticks) {
  for (Ticks i = 0; i < ticks; ++i) {
    for (auto& module : modules_) module->tick_once();
    bus_.tick(now_);
    ++now_;
  }
}

}  // namespace air::system
