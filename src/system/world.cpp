#include "system/world.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "util/assert.hpp"

namespace air::system {

World::~World() = default;

Module& World::add_module(ModuleConfig config) {
  const ModuleId id = config.id;
  // The bus recorder owns the 0xFFFF origin namespace; a module there would
  // alias its span ids and break cross-module flow stitching.
  AIR_ASSERT_MSG(static_cast<std::uint32_t>(id.value()) !=
                     telemetry::SpanRecorder::kBusOrigin,
                 "module id collides with the bus span origin");
  for (const auto& existing : modules_) {
    AIR_ASSERT_MSG(existing->config().id != id, "duplicate module id");
  }
  modules_.push_back(std::make_unique<Module>(std::move(config)));
  staged_.emplace_back();
  Module& module = *modules_.back();
  mods_.push_back(&module);
  live_.push_back(1);
  staged_dirty_.push_back(0);
  ++live_count_;
  // Telemetry state must be module-confined: workers advance modules
  // concurrently, so no recorder may be shared with the bus (or, by unique
  // origin above, with any other module).
  AIR_ASSERT_MSG(module.spans().origin() != bus_spans_.origin(),
                 "module span recorder aliases the bus recorder");

  // Remote sends are staged, never injected directly: during a parallel
  // epoch this closure runs on a worker thread, and the per-module queue is
  // the only state it may write. The driver merges staged frames into the
  // bus at the barrier in (tick, module attach order), which is exactly the
  // order direct Bus::send calls had under per-tick lockstep -- TDMA
  // arbitration and bus span numbering stay independent of the thread
  // interleaving.
  const std::size_t index = modules_.size() - 1;
  module.remote_send = [this, index](const ipc::RemotePortRef& dest,
                                     const ipc::Message& message,
                                     ipc::ChannelKind kind) {
    staged_[index].push_back({mods_[index]->now(), dest, message, kind});
    staged_dirty_[index] = 1;  // own lane's byte: race-free under the pool
  };
  bus_.attach(id, [&module](PartitionId partition, const std::string& port,
                            const ipc::Message& message,
                            ipc::ChannelKind kind) {
    module.deliver_remote(partition, port, message, kind);
  });
  return module;
}

void World::enable_online(telemetry::OnlineOptions options) {
  AIR_ASSERT_MSG(now_ == 0, "enable the bus plane before the first run");
  bus_plane_ = std::make_unique<telemetry::BusPlane>(options, "bus");
  bus_plane_->set_spans(&bus_spans_);
}

const telemetry::BusSample& World::sample_bus() const {
  telemetry::BusSample& sample = bus_sample_;
  const net::BusStats& stats = bus_.stats();
  sample.frames_sent = stats.frames_sent;
  sample.frames_delivered = stats.frames_delivered;
  sample.backlog = bus_.pending_total();
  sample.spans_dropped = bus_spans_.dropped_spans();
  bus_.station_stats(station_scratch_);
  sample.stations.clear();
  sample.stations.reserve(station_scratch_.size());
  for (const net::StationStats& s : station_scratch_) {
    telemetry::StationWindow w;
    w.module = s.module.value();
    w.frames_sent = static_cast<std::int64_t>(s.frames_sent);
    w.frames_delivered = static_cast<std::int64_t>(s.frames_delivered);
    w.backlog = static_cast<std::int64_t>(s.backlog);
    sample.stations.push_back(w);
  }
  return sample;
}

void World::refresh_live() {
  // `stopped` is monotone, so demotion is the only transition; scan the
  // compact byte column and only dereference modules still marked live.
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i] != 0 && mods_[i]->stopped()) {
      live_[i] = 0;
      --live_count_;
    }
  }
}

void World::set_workers(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (workers == workers_) return;
  workers_ = workers;
  pool_.reset();
}

Ticks World::epoch_horizon(Ticks limit) const {
  AIR_ASSERT(limit > 0);
  Ticks horizon = limit;
  // Pre-existing traffic: nothing already queued or in flight may arrive
  // before the epoch's final tick (arrival exactly there is fine -- every
  // module has completed that tick when the barrier replays the bus, which
  // is precisely when lockstep would have delivered).
  const Ticks next = bus_.next_delivery(now_);
  if (next < kInfiniteTime) horizon = std::min(horizon, next - now_ + 1);
  // New traffic: a module quiescent for q ticks cannot emit a frame before
  // now + q, so nothing it sends can arrive before now + q + delay. A busy
  // module (q = 0) may send on the very next tick.
  const Ticks delay = bus_.config().propagation_delay;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i] == 0) continue;
    const Ticks quiet = mods_[i]->warp_headroom();
    if (quiet >= kInfiniteTime - delay - 1) continue;  // no constraint
    horizon = std::min(horizon, quiet + delay + 1);
  }
  return horizon > 1 ? horizon : 1;
}

void World::merge_and_run_bus(Ticks start, Ticks ticks) {
  // The dirty byte column is the only full-width scan: one byte per module,
  // written solely by its own lane during the epoch, read here after the
  // pool joined. Modules that stayed silent cost one byte load each.
  merge_list_.clear();
  for (std::size_t i = 0; i < staged_dirty_.size(); ++i) {
    if (staged_dirty_[i] != 0) merge_list_.push_back(i);
  }
  if (merge_list_.empty() && bus_.pending_total() == 0) {
    // Every earlier tick of the span is provably a no-op (no queued
    // frames, and the horizon placed the first possible arrival at the
    // final tick): jump straight to the delivery edge. Digest boundaries
    // inside the skipped prefix close with the frozen pre-delivery stats,
    // exactly what per-tick replay would have sampled there.
    if (bus_plane_ != nullptr && ticks > 1) {
      bus_plane_->close_through(start + ticks - 2, sample_bus());
    }
    bus_.tick(start + ticks - 1);
    if (bus_plane_ != nullptr) {
      bus_plane_->close_through(start + ticks - 1, sample_bus());
    }
    return;
  }
  // Per-tick merge walks only the dirty modules (attach order is preserved
  // because merge_list_ is built in index order); the cursors are member
  // scratch so an epoch barrier allocates nothing in the steady state.
  merge_cursor_.assign(merge_list_.size(), 0);
  for (Ticks u = start; u < start + ticks; ++u) {
    for (std::size_t m = 0; m < merge_list_.size(); ++m) {
      const std::size_t i = merge_list_[m];
      std::vector<StagedFrame>& queue = staged_[i];
      std::size_t& next = merge_cursor_[m];
      while (next < queue.size() && queue[next].tick == u) {
        bus_.send(mods_[i]->config().id, queue[next].dest,
                  queue[next].message, queue[next].kind, u);
        ++stats_.frames_merged;
        ++next;
      }
    }
    {
      telemetry::HostProfiler::Scope scope(profiler_,
                                           telemetry::ProfilePoint::kBusPump);
      bus_.tick(u);
    }
    if (bus_plane_ != nullptr && bus_plane_->next_close_tick() == u) {
      bus_plane_->close_through(u, sample_bus());
    }
  }
  for (std::size_t m = 0; m < merge_list_.size(); ++m) {
    const std::size_t i = merge_list_[m];
    AIR_ASSERT_MSG(merge_cursor_[m] == staged_[i].size(),
                   "staged frame timestamped outside its epoch");
    staged_[i].clear();
    staged_dirty_[i] = 0;
  }
}

void World::run(Ticks ticks) {
  if (ticks <= 0) return;
  if (workers_ > 1 && !pool_) {
    // The epoch caller claims work alongside the pool, so `workers_` lanes
    // need one fewer thread.
    pool_ = std::make_unique<WorkerPool>(workers_ - 1);
  }
  const bool pooled =
      pool_ != nullptr && pool_->thread_count() > 0 && modules_.size() > 1;
  Ticks done = 0;
  while (done < ticks) {
    // One epoch round is the World profiler's sampling unit. The scopes
    // attribute the cross-module machinery only; module-interior cost
    // lands in each module's own profiler tree (which workers advance
    // concurrently -- a shared tree would race).
    profiler_.begin_tick();
    telemetry::HostProfiler::Scope epoch_scope(
        profiler_, telemetry::ProfilePoint::kEpoch);
    // Stopped modules fall out of every scan below: refresh the live
    // column once per epoch (modules only stop while running, so the bits
    // are exact until the pool runs again).
    refresh_live();
    const Ticks span = epoch_horizon(ticks - done);
    const Ticks start = now_;
    const std::uint64_t active = live_count_;
    if (pooled) {
      // Workers read the live byte (frozen during the epoch) to skip dead
      // lanes without touching the module row.
      const auto task = [this, span](std::size_t i) {
        if (live_[i] != 0) mods_[i]->run(span);
      };
      pool_->run(mods_.size(), task);
    } else {
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (live_[i] != 0) mods_[i]->run(span);
      }
    }
    {
      telemetry::HostProfiler::Scope barrier_scope(
          profiler_, telemetry::ProfilePoint::kEpochBarrier);
      merge_and_run_bus(start, span);
    }
    now_ += span;
    done += span;
    ++stats_.epochs;
    stats_.epoch_ticks += static_cast<std::uint64_t>(span);
    stats_.module_ticks += active * static_cast<std::uint64_t>(span);
  }
}

Ticks World::lockstep_headroom(Ticks limit) {
  // Fast recheck: whatever forced stepping last tick almost always still
  // does; while it holds, the scan over every other module is skipped.
  if (warp_blocker_ != kUnblocked) {
    if (warp_blocker_ == kBusBlocked) {
      if (bus_.idle_ticks(now_) == 0) return 0;
    } else {
      const Module& module = *modules_[warp_blocker_];
      if (!module.stopped() &&
          (!module.time_warp_enabled() || module.warp_headroom() == 0)) {
        return 0;
      }
    }
    warp_blocker_ = kUnblocked;  // the blocker cleared: full rescan
  }
  Ticks n = std::min(limit, bus_.idle_ticks(now_));
  if (n == 0) {
    warp_blocker_ = kBusBlocked;
    return 0;
  }
  // A stopped module never changes state again, so it bounds nothing.
  refresh_live();
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i] == 0) continue;
    const Module& module = *mods_[i];
    if (!module.time_warp_enabled()) {
      warp_blocker_ = i;
      return 0;
    }
    const Ticks headroom = module.warp_headroom();
    if (headroom == 0) {
      warp_blocker_ = i;
      return 0;
    }
    n = std::min(n, headroom);
  }
  return n;
}

void World::run_lockstep(Ticks ticks) {
  if (ticks <= 0) return;
  Ticks done = 0;
  while (done < ticks) {
    // Lockstep time warp: skip a span only when *every* module is
    // quiescent for it and the bus would neither transmit nor deliver.
    const Ticks n = lockstep_headroom(ticks - done);
    if (n > 0) {
      // warp_advance is a no-op on stopped modules, so walking only the
      // live column is byte-identical to walking every module.
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (live_[i] != 0) mods_[i]->warp_advance(n);
      }
      // Bus stats are provably frozen across the warped span (no queued
      // frames, no delivery before its end), so boundaries inside it close
      // with exactly the values per-tick stepping would have sampled.
      if (bus_plane_ != nullptr) {
        bus_plane_->close_through(now_ + n - 1, sample_bus());
      }
      now_ += n;
      done += n;
      stats_.lockstep_warped += static_cast<std::uint64_t>(n);
      ++stats_.lockstep_spans;
      continue;
    }
    profiler_.begin_tick();
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i] != 0) mods_[i]->tick_once();
    }
    // Inject this tick's staged frames in module attach order -- exactly
    // where the modules' direct Bus::send calls used to land. The dirty
    // column keeps the injection sweep O(senders), not O(modules).
    for (std::size_t i = 0; i < staged_dirty_.size(); ++i) {
      if (staged_dirty_[i] == 0) continue;
      for (const StagedFrame& frame : staged_[i]) {
        bus_.send(mods_[i]->config().id, frame.dest, frame.message,
                  frame.kind, now_);
      }
      staged_[i].clear();
      staged_dirty_[i] = 0;
    }
    {
      telemetry::HostProfiler::Scope scope(profiler_,
                                           telemetry::ProfilePoint::kBusPump);
      bus_.tick(now_);
    }
    if (bus_plane_ != nullptr && bus_plane_->next_close_tick() == now_) {
      bus_plane_->close_through(now_, sample_bus());
    }
    ++now_;
    ++done;
    ++stats_.lockstep_ticks;
  }
}

std::string World::status_report() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof line, "world t=%lld  modules=%zu  workers=%zu\n",
                static_cast<long long>(now_), modules_.size(), workers_);
  out += line;
  const double mean_epoch =
      stats_.epochs > 0 ? static_cast<double>(stats_.epoch_ticks) /
                              static_cast<double>(stats_.epochs)
                        : 0.0;
  // Pool feed ratio: module-lane ticks actually offered per worker lane.
  // 1.0 = every lane busy each epoch; < 1.0 = more workers than runnable
  // modules. Deterministic by construction (no wall clock in the core).
  const double utilisation =
      stats_.epoch_ticks > 0
          ? static_cast<double>(stats_.module_ticks) /
                (static_cast<double>(stats_.epoch_ticks) *
                 static_cast<double>(workers_))
          : 0.0;
  std::snprintf(line, sizeof line,
                "  epochs: %llu (ticks=%llu, mean length=%.1f, "
                "worker utilisation=%.2f)\n",
                static_cast<unsigned long long>(stats_.epochs),
                static_cast<unsigned long long>(stats_.epoch_ticks),
                mean_epoch, utilisation);
  out += line;
  std::snprintf(line, sizeof line,
                "  lockstep: ticks=%llu warped=%llu spans=%llu\n",
                static_cast<unsigned long long>(stats_.lockstep_ticks),
                static_cast<unsigned long long>(stats_.lockstep_warped),
                static_cast<unsigned long long>(stats_.lockstep_spans));
  out += line;
  const net::BusStats& bus = bus_.stats();
  std::snprintf(line, sizeof line,
                "  bus: sent=%llu delivered=%llu dropped=%llu merged=%llu\n",
                static_cast<unsigned long long>(bus.frames_sent),
                static_cast<unsigned long long>(bus.frames_delivered),
                static_cast<unsigned long long>(bus.frames_dropped),
                static_cast<unsigned long long>(stats_.frames_merged));
  out += line;
  const telemetry::StringArena::Stats& arena = arena_.stats();
  std::snprintf(line, sizeof line,
                "  bus arena: symbols=%zu blocks=%zu bytes=%zu "
                "high_water=%zu trims=%llu\n",
                arena.symbols, arena.blocks, arena.bytes_used,
                arena.high_water,
                static_cast<unsigned long long>(arena.trims));
  out += line;
  if (profiler_.enabled() && profiler_.ticks() > 0) {
    const telemetry::HostProfiler::PathStats epoch =
        profiler_.point_stats(telemetry::ProfilePoint::kEpoch);
    std::snprintf(line, sizeof line,
                  "  profile: sampled=%llu rounds (stride %u), "
                  "mean epoch=%.1f ns\n",
                  static_cast<unsigned long long>(profiler_.ticks()),
                  profiler_.stride(),
                  epoch.calls > 0 ? static_cast<double>(epoch.total_ns) /
                                        static_cast<double>(epoch.calls)
                                  : 0.0);
    out += line;
  }
  if (bus_plane_ != nullptr) out += bus_plane_->summary_line();
  return out;
}

}  // namespace air::system
