#include "system/world.hpp"

#include <algorithm>

namespace air::system {

Module& World::add_module(ModuleConfig config) {
  const ModuleId id = config.id;
  modules_.push_back(std::make_unique<Module>(std::move(config)));
  Module& module = *modules_.back();

  module.remote_send = [this, id](const ipc::RemotePortRef& dest,
                                  const ipc::Message& message,
                                  ipc::ChannelKind kind) {
    bus_.send(id, dest, message, kind, now_);
  };
  bus_.attach(id, [&module](PartitionId partition, const std::string& port,
                            const ipc::Message& message,
                            ipc::ChannelKind kind) {
    module.deliver_remote(partition, port, message, kind);
  });
  return module;
}

void World::run(Ticks ticks) {
  Ticks done = 0;
  while (done < ticks) {
    // Lockstep time warp: skip a span only when *every* module is
    // quiescent for it and the bus would neither transmit nor deliver.
    // A stopped module never changes state again, so it bounds nothing.
    Ticks n = std::min(ticks - done, bus_.idle_ticks(now_));
    for (auto& module : modules_) {
      if (module->stopped()) continue;
      if (!module->time_warp_enabled()) {
        n = 0;
        break;
      }
      n = std::min(n, module->warp_headroom());
    }
    if (n > 0) {
      for (auto& module : modules_) module->warp_advance(n);
      now_ += n;
      done += n;
      continue;
    }
    for (auto& module : modules_) module->tick_once();
    bus_.tick(now_);
    ++now_;
    ++done;
  }
}

}  // namespace air::system
