#include "ipc/ports.hpp"

namespace air::ipc {

bool SamplingPort::write(Message message) {
  if (message.payload.size() > max_bytes_) return false;
  slot_ = std::move(message);
  return true;
}

SamplingPort::ReadResult SamplingPort::read(Ticks now) const {
  if (!slot_.has_value()) return {std::nullopt, false};
  const bool valid =
      refresh_period_ == kInfiniteTime ||
      now - slot_->sent_at <= refresh_period_;
  return {slot_, valid};
}

QueuingPort::SendStatus QueuingPort::send(Message message) {
  if (message.payload.size() > max_bytes_) return SendStatus::kTooLarge;
  if (!fifo_.push(std::move(message))) {
    ++overflows_;
    return SendStatus::kFull;
  }
  return SendStatus::kOk;
}

std::optional<Message> QueuingPort::receive() {
  Message out;
  if (!fifo_.pop(out)) return std::nullopt;
  return out;
}

}  // namespace air::ipc
