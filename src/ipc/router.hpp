// Channel routing between partition ports (the PMK low-level interpartition
// communication mechanism of Sect. 2.1).
//
// A channel connects one source port to one or more destination ports.
// Destinations on the same module are served by direct memory-to-memory
// copies (never violating spatial separation: the router runs at PMK level
// and is the only code touching both sides). Destinations on a *remote*
// module are handed to the remote hook, behind which src/net simulates a
// communication infrastructure -- applications cannot tell the difference,
// which is the property the paper requires of the APEX interface.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ipc/ports.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/spans.hpp"
#include "util/types.hpp"

namespace air::ipc {

enum class ChannelKind : std::uint8_t { kSampling, kQueuing };

struct PortRef {
  PartitionId partition;
  std::string port;

  friend auto operator<=>(const PortRef&, const PortRef&) = default;
};

struct RemotePortRef {
  ModuleId module;
  PartitionId partition;
  std::string port;
};

struct ChannelConfig {
  ChannelId id;
  ChannelKind kind{ChannelKind::kSampling};
  PortRef source;
  std::vector<PortRef> local_destinations;
  std::vector<RemotePortRef> remote_destinations;
};

class Router {
 public:
  // --- integration-time wiring ---
  void add_sampling_port(PartitionId partition, SamplingPort* port);
  void add_queuing_port(PartitionId partition, QueuingPort* port);
  void add_channel(ChannelConfig config);

  [[nodiscard]] SamplingPort* sampling_port(const PortRef& ref);
  [[nodiscard]] QueuingPort* queuing_port(const PortRef& ref);

  // --- runtime, called from APEX source-port services ---
  /// Propagate a sampling message written at `source` to every destination.
  void propagate_sampling(const PortRef& source, const Message& message);

  /// Transfer queuing messages of the channel rooted at `source` from the
  /// source port queue to the destination port queues (ARINC 653 channels
  /// move messages between port queues; senders enqueue at the source).
  /// A message moves only when *every* local destination has space (atomic
  /// multicast); remote destinations go through the hook, which models the
  /// bus interface queue as always accepting. Fires on_source_space when
  /// room opened up at the source, and on_delivery per local destination.
  void pump(const PortRef& source);

  /// Pump every queuing channel -- the PMK runs this once per tick so that
  /// channels progress even while the source partition is inactive.
  void pump_all();

  /// True when pump_all() would be observably a no-op: no channel would
  /// move a message, and no blocked backlog would refresh its depth gauge
  /// (gauges count samples, so even a same-value write is observable).
  /// The time-warp engine may skip per-tick pumps only while this holds.
  [[nodiscard]] bool quiescent() const;

  // --- runtime, called by the net layer on remote arrival ---
  void deliver_remote(const PortRef& destination, const Message& message,
                      ChannelKind kind);

  /// Send to a remote module (wired by the system layer to the bus).
  std::function<void(const RemotePortRef&, const Message&, ChannelKind)>
      remote_send;

  /// A message landed in a destination port (used to wake blocked readers).
  std::function<void(const PortRef&)> on_delivery;

  /// Space opened in a source port queue (used to wake blocked senders).
  std::function<void(const PortRef&)> on_source_space;

  [[nodiscard]] const std::vector<ChannelConfig>& channels() const {
    return channels_;
  }

  /// Publish per-channel traffic metrics (messages, bytes, queue depth,
  /// drops) keyed by channel id; remote arrivals (no local channel) are
  /// keyed -1. nullptr = off. Counters (messages/bytes/drops) accumulate in
  /// router-local totals and reach the registry only via scrape_traffic()
  /// (batched telemetry, DESIGN.md §11); the depth *gauge* still samples
  /// per pump -- gauges count observations, so batching would be visible.
  void set_metrics(telemetry::MetricsRegistry* metrics) {
    metrics_ = metrics;
  }

  /// Write the accumulated per-channel message/byte totals (and remote
  /// drops, keyed -1) into the registry. Touches exactly the slots the
  /// retired per-message `add` calls would have touched: channels that
  /// moved at least one message, and the drop slot after the first drop.
  void scrape_traffic();

  // --- local traffic totals (online-plane point reads) ---
  [[nodiscard]] std::uint64_t total_messages() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t total_drops() const { return remote_drops_; }

  /// Record a router-hop span per traced message moved through a channel
  /// (and re-parent the delivered copies so the flow stays connected).
  /// `now` supplies the module clock; nullptr = off.
  void set_spans(telemetry::SpanRecorder* spans,
                 std::function<Ticks()> now) {
    spans_ = spans;
    now_ = std::move(now);
  }

 private:
  /// Per-message counters accumulated locally; index-parallel to channels_.
  struct Traffic {
    std::uint64_t messages{0};
    std::uint64_t bytes{0};
  };

  /// Hot-path cache: channel config plus the port pointers its source and
  /// destinations resolve to, computed once per wiring change instead of a
  /// string-compare scan plus string-keyed map lookups per pump per tick.
  struct ResolvedChannel {
    std::size_t index{0};  // into channels_ / traffic_
    const ChannelConfig* config{nullptr};
    QueuingPort* src_queue{nullptr};  // kQueuing channels only
    // Destination port plus its PortRef (for the on_delivery hook).
    // Unregistered destination ports are dropped here, matching the null
    // checks the uncached delivery loops performed.
    std::vector<std::pair<SamplingPort*, const PortRef*>> sampling_dests;
    std::vector<std::pair<QueuingPort*, const PortRef*>> queuing_dests;
    // First resolved channel with the same source port: pump(source)
    // historically resolved to the first matching channel, so pump_all
    // routes through this alias to stay faithful on duplicate sources.
    std::size_t pump_alias{0};
  };

  void rebuild_resolved();
  void pump_resolved(ResolvedChannel& rc);

  /// Hop span for a traced message; returns the message to deliver (the
  /// original, or a re-parented copy when the hop was recorded).
  [[nodiscard]] Message traced_hop(const Message& message, std::int64_t channel,
                                   std::int64_t destinations);

  std::map<PortRef, SamplingPort*> sampling_;
  std::map<PortRef, QueuingPort*> queuing_;
  std::vector<ChannelConfig> channels_;
  std::vector<Traffic> traffic_;  // parallel to channels_
  std::uint64_t remote_drops_{0};
  std::vector<ResolvedChannel> resolved_;           // parallel to channels_
  std::map<PortRef, std::size_t> source_to_resolved_;  // first index wins
  telemetry::MetricsRegistry* metrics_{nullptr};
  telemetry::SpanRecorder* spans_{nullptr};
  std::function<Ticks()> now_;
};

}  // namespace air::ipc
