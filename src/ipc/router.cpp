#include "ipc/router.hpp"

#include "util/assert.hpp"

namespace air::ipc {

void Router::add_sampling_port(PartitionId partition, SamplingPort* port) {
  AIR_ASSERT(port != nullptr);
  sampling_[{partition, port->name()}] = port;
}

void Router::add_queuing_port(PartitionId partition, QueuingPort* port) {
  AIR_ASSERT(port != nullptr);
  queuing_[{partition, port->name()}] = port;
}

void Router::add_channel(ChannelConfig config) {
  channels_.push_back(std::move(config));
}

SamplingPort* Router::sampling_port(const PortRef& ref) {
  auto it = sampling_.find(ref);
  return it != sampling_.end() ? it->second : nullptr;
}

QueuingPort* Router::queuing_port(const PortRef& ref) {
  auto it = queuing_.find(ref);
  return it != queuing_.end() ? it->second : nullptr;
}

const ChannelConfig* Router::channel_for_source(const PortRef& source) const {
  for (const auto& channel : channels_) {
    if (channel.source == source) return &channel;
  }
  return nullptr;
}

Message Router::traced_hop(const Message& message, std::int64_t channel,
                           std::int64_t destinations) {
  // Precondition (checked at call sites to keep the untraced path free of
  // copies): spans_ != nullptr && message.ctx.trace_id != 0.
  Message copy = message;
  copy.ctx.parent_span = spans_->instant(
      telemetry::SpanKind::kMsgRouterHop, now_ ? now_() : 0,
      message.ctx.parent_span, message.ctx.trace_id, channel, destinations,
      static_cast<std::int64_t>(message.payload.size()));
  return copy;
}

void Router::propagate_sampling(const PortRef& source,
                                const Message& message) {
  const ChannelConfig* channel = channel_for_source(source);
  if (channel == nullptr) return;  // unconnected port: message stays local
  if (metrics_ != nullptr) {
    metrics_->add(telemetry::Metric::kIpcMessages, channel->id.value());
    metrics_->add(telemetry::Metric::kIpcBytes, channel->id.value(),
                  message.payload.size());
  }
  const Message* delivered = &message;
  Message traced;
  if (spans_ != nullptr && message.ctx.trace_id != 0) {
    traced = traced_hop(message, channel->id.value(),
                        static_cast<std::int64_t>(
                            channel->local_destinations.size() +
                            channel->remote_destinations.size()));
    delivered = &traced;
  }
  for (const PortRef& dest : channel->local_destinations) {
    if (SamplingPort* port = sampling_port(dest)) {
      (void)port->write(*delivered);  // sampling writes always overwrite
      if (on_delivery) on_delivery(dest);
    }
  }
  for (const RemotePortRef& dest : channel->remote_destinations) {
    if (remote_send) remote_send(dest, *delivered, ChannelKind::kSampling);
  }
}

void Router::pump(const PortRef& source) {
  const ChannelConfig* channel = channel_for_source(source);
  if (channel == nullptr || channel->kind != ChannelKind::kQueuing) return;
  QueuingPort* src = queuing_port(source);
  if (src == nullptr) return;

  bool moved_any = false;
  while (!src->empty()) {
    // Atomic multicast: move only when every local destination has space.
    bool all_have_space = true;
    for (const PortRef& dest : channel->local_destinations) {
      QueuingPort* port = queuing_port(dest);
      if (port != nullptr && port->full()) {
        all_have_space = false;
        break;
      }
    }
    if (!all_have_space) break;

    auto message = src->receive();
    AIR_ASSERT(message.has_value());
    if (spans_ != nullptr && message->ctx.trace_id != 0) {
      *message = traced_hop(*message, channel->id.value(),
                            static_cast<std::int64_t>(
                                channel->local_destinations.size() +
                                channel->remote_destinations.size()));
    }
    if (metrics_ != nullptr) {
      metrics_->add(telemetry::Metric::kIpcMessages, channel->id.value());
      metrics_->add(telemetry::Metric::kIpcBytes, channel->id.value(),
                    message->payload.size());
    }
    for (const PortRef& dest : channel->local_destinations) {
      if (QueuingPort* port = queuing_port(dest)) {
        (void)port->send(*message);
        if (on_delivery) on_delivery(dest);
      }
    }
    for (const RemotePortRef& dest : channel->remote_destinations) {
      if (remote_send) remote_send(dest, *message, ChannelKind::kQueuing);
    }
    moved_any = true;
  }
  // Refresh the depth gauge only when this pump moved something or left a
  // backlog behind -- an idle channel costs no registry write per tick.
  if (metrics_ != nullptr && (moved_any || !src->empty())) {
    metrics_->set(telemetry::Metric::kIpcQueueDepth, channel->id.value(),
                  static_cast<std::int64_t>(src->depth()));
  }
  if (moved_any && on_source_space) on_source_space(source);
}

void Router::pump_all() {
  for (const auto& channel : channels_) {
    if (channel.kind == ChannelKind::kQueuing) pump(channel.source);
  }
}

bool Router::quiescent() const {
  for (const auto& channel : channels_) {
    if (channel.kind != ChannelKind::kQueuing) continue;
    auto it = queuing_.find(channel.source);
    if (it == queuing_.end()) continue;
    const QueuingPort* src = it->second;
    if (src->empty()) continue;
    // A backlog exists: pump would either move a message right now...
    bool all_have_space = true;
    for (const PortRef& dest : channel.local_destinations) {
      auto dit = queuing_.find(dest);
      if (dit != queuing_.end() && dit->second->full()) {
        all_have_space = false;
        break;
      }
    }
    if (all_have_space) return false;
    // ...or leave it blocked but refresh the depth gauge each tick.
    if (metrics_ != nullptr && metrics_->enabled()) return false;
  }
  return true;
}

void Router::deliver_remote(const PortRef& destination, const Message& message,
                            ChannelKind kind) {
  const Message* delivered = &message;
  Message traced;
  if (spans_ != nullptr && message.ctx.trace_id != 0) {
    traced = traced_hop(message, -1, 1);  // channel -1 = remote arrival
    delivered = &traced;
  }
  if (kind == ChannelKind::kSampling) {
    if (SamplingPort* port = sampling_port(destination)) {
      (void)port->write(*delivered);
      if (on_delivery) on_delivery(destination);
    }
  } else {
    if (QueuingPort* port = queuing_port(destination)) {
      if (port->send(*delivered) == QueuingPort::SendStatus::kOk) {
        if (on_delivery) on_delivery(destination);
      } else if (metrics_ != nullptr) {
        // Remote arrival lost on a full destination queue: the one place a
        // queuing message can drop (local channels hold at the source).
        metrics_->add(telemetry::Metric::kIpcDrops, -1);
      }
    }
  }
}

}  // namespace air::ipc
