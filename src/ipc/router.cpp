#include "ipc/router.hpp"

#include "util/assert.hpp"

namespace air::ipc {

void Router::add_sampling_port(PartitionId partition, SamplingPort* port) {
  AIR_ASSERT(port != nullptr);
  sampling_[{partition, port->name()}] = port;
  rebuild_resolved();
}

void Router::add_queuing_port(PartitionId partition, QueuingPort* port) {
  AIR_ASSERT(port != nullptr);
  queuing_[{partition, port->name()}] = port;
  rebuild_resolved();
}

void Router::add_channel(ChannelConfig config) {
  channels_.push_back(std::move(config));
  traffic_.emplace_back();
  rebuild_resolved();
}

void Router::rebuild_resolved() {
  // Integration-time work (once per add_* call): resolve every channel's
  // source and destination ports so the per-tick pump never consults the
  // string-keyed maps.
  resolved_.clear();
  resolved_.reserve(channels_.size());
  source_to_resolved_.clear();
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const ChannelConfig& channel = channels_[i];
    ResolvedChannel rc;
    rc.index = i;
    rc.config = &channel;
    if (channel.kind == ChannelKind::kQueuing) {
      rc.src_queue = queuing_port(channel.source);
      for (const PortRef& dest : channel.local_destinations) {
        if (QueuingPort* port = queuing_port(dest)) {
          rc.queuing_dests.emplace_back(port, &dest);
        }
      }
    } else {
      for (const PortRef& dest : channel.local_destinations) {
        if (SamplingPort* port = sampling_port(dest)) {
          rc.sampling_dests.emplace_back(port, &dest);
        }
      }
    }
    const auto [it, inserted] =
        source_to_resolved_.emplace(channel.source, i);
    rc.pump_alias = it->second;  // first channel with this source
    resolved_.push_back(std::move(rc));
  }
}

SamplingPort* Router::sampling_port(const PortRef& ref) {
  auto it = sampling_.find(ref);
  return it != sampling_.end() ? it->second : nullptr;
}

QueuingPort* Router::queuing_port(const PortRef& ref) {
  auto it = queuing_.find(ref);
  return it != queuing_.end() ? it->second : nullptr;
}

Message Router::traced_hop(const Message& message, std::int64_t channel,
                           std::int64_t destinations) {
  // Precondition (checked at call sites to keep the untraced path free of
  // copies): spans_ != nullptr && message.ctx.trace_id != 0.
  Message copy = message;
  copy.ctx.parent_span = spans_->instant(
      telemetry::SpanKind::kMsgRouterHop, now_ ? now_() : 0,
      message.ctx.parent_span, message.ctx.trace_id, channel, destinations,
      static_cast<std::int64_t>(message.payload.size()));
  return copy;
}

void Router::propagate_sampling(const PortRef& source,
                                const Message& message) {
  const auto it = source_to_resolved_.find(source);
  if (it == source_to_resolved_.end()) return;  // unconnected port
  ResolvedChannel& rc = resolved_[it->second];
  const ChannelConfig* channel = rc.config;
  if (metrics_ != nullptr && metrics_->enabled()) {
    Traffic& traffic = traffic_[rc.index];
    ++traffic.messages;
    traffic.bytes += message.payload.size();
  }
  const Message* delivered = &message;
  Message traced;
  if (spans_ != nullptr && message.ctx.trace_id != 0) {
    traced = traced_hop(message, channel->id.value(),
                        static_cast<std::int64_t>(
                            channel->local_destinations.size() +
                            channel->remote_destinations.size()));
    delivered = &traced;
  }
  for (const auto& [port, dest] : rc.sampling_dests) {
    (void)port->write(*delivered);  // sampling writes always overwrite
    if (on_delivery) on_delivery(*dest);
  }
  for (const RemotePortRef& dest : channel->remote_destinations) {
    if (remote_send) remote_send(dest, *delivered, ChannelKind::kSampling);
  }
}

void Router::pump(const PortRef& source) {
  const auto it = source_to_resolved_.find(source);
  if (it == source_to_resolved_.end()) return;
  ResolvedChannel& rc = resolved_[it->second];
  if (rc.config->kind != ChannelKind::kQueuing) return;
  pump_resolved(rc);
}

void Router::pump_resolved(ResolvedChannel& rc) {
  const ChannelConfig* channel = rc.config;
  QueuingPort* src = rc.src_queue;
  if (src == nullptr) return;
  const bool counting = metrics_ != nullptr && metrics_->enabled();

  bool moved_any = false;
  while (!src->empty()) {
    // Atomic multicast: move only when every local destination has space.
    bool all_have_space = true;
    for (const auto& [port, dest] : rc.queuing_dests) {
      if (port->full()) {
        all_have_space = false;
        break;
      }
    }
    if (!all_have_space) break;

    auto message = src->receive();
    AIR_ASSERT(message.has_value());
    if (spans_ != nullptr && message->ctx.trace_id != 0) {
      *message = traced_hop(*message, channel->id.value(),
                            static_cast<std::int64_t>(
                                channel->local_destinations.size() +
                                channel->remote_destinations.size()));
    }
    if (counting) {
      Traffic& traffic = traffic_[rc.index];
      ++traffic.messages;
      traffic.bytes += message->payload.size();
    }
    for (const auto& [port, dest] : rc.queuing_dests) {
      (void)port->send(*message);
      if (on_delivery) on_delivery(*dest);
    }
    for (const RemotePortRef& dest : channel->remote_destinations) {
      if (remote_send) remote_send(dest, *message, ChannelKind::kQueuing);
    }
    moved_any = true;
  }
  // Refresh the depth gauge only when this pump moved something or left a
  // backlog behind -- an idle channel costs no registry write per tick.
  if (metrics_ != nullptr && (moved_any || !src->empty())) {
    metrics_->set(telemetry::Metric::kIpcQueueDepth, channel->id.value(),
                  static_cast<std::int64_t>(src->depth()));
  }
  if (moved_any && on_source_space) on_source_space(channel->source);
}

void Router::pump_all() {
  for (ResolvedChannel& rc : resolved_) {
    if (rc.config->kind != ChannelKind::kQueuing) continue;
    // Route through the first channel sharing this source, exactly as the
    // per-source pump(source) call used to resolve it.
    pump_resolved(resolved_[rc.pump_alias]);
  }
}

bool Router::quiescent() const {
  for (const ResolvedChannel& rc : resolved_) {
    if (rc.config->kind != ChannelKind::kQueuing) continue;
    const QueuingPort* src = rc.src_queue;
    if (src == nullptr || src->empty()) continue;
    // A backlog exists: pump would either move a message right now...
    bool all_have_space = true;
    for (const auto& [port, dest] : rc.queuing_dests) {
      if (port->full()) {
        all_have_space = false;
        break;
      }
    }
    if (all_have_space) return false;
    // ...or leave it blocked but refresh the depth gauge each tick.
    if (metrics_ != nullptr && metrics_->enabled()) return false;
  }
  return true;
}

void Router::deliver_remote(const PortRef& destination, const Message& message,
                            ChannelKind kind) {
  const Message* delivered = &message;
  Message traced;
  if (spans_ != nullptr && message.ctx.trace_id != 0) {
    traced = traced_hop(message, -1, 1);  // channel -1 = remote arrival
    delivered = &traced;
  }
  if (kind == ChannelKind::kSampling) {
    if (SamplingPort* port = sampling_port(destination)) {
      (void)port->write(*delivered);
      if (on_delivery) on_delivery(destination);
    }
  } else {
    if (QueuingPort* port = queuing_port(destination)) {
      if (port->send(*delivered) == QueuingPort::SendStatus::kOk) {
        if (on_delivery) on_delivery(destination);
      } else if (metrics_ != nullptr && metrics_->enabled()) {
        // Remote arrival lost on a full destination queue: the one place a
        // queuing message can drop (local channels hold at the source).
        ++remote_drops_;
      }
    }
  }
}

void Router::scrape_traffic() {
  if (metrics_ == nullptr) return;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const Traffic& traffic = traffic_[i];
    if (traffic.messages == 0) continue;
    const std::int32_t id = channels_[i].id.value();
    metrics_->set_counter(telemetry::Metric::kIpcMessages, id,
                          traffic.messages);
    metrics_->set_counter(telemetry::Metric::kIpcBytes, id, traffic.bytes);
  }
  if (remote_drops_ > 0) {
    metrics_->set_counter(telemetry::Metric::kIpcDrops, -1, remote_drops_);
  }
}

std::uint64_t Router::total_messages() const {
  std::uint64_t total = 0;
  for (const Traffic& traffic : traffic_) total += traffic.messages;
  return total;
}

std::uint64_t Router::total_bytes() const {
  std::uint64_t total = 0;
  for (const Traffic& traffic : traffic_) total += traffic.bytes;
  return total;
}

}  // namespace air::ipc
