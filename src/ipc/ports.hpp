// Interpartition communication port objects (Sect. 2.1, "Interpartition
// Communication"; service semantics per ARINC 653 P1).
//
// Ports are passive state holders: operations never block here. The APEX
// layer implements blocking-with-timeout on top, and the PMK router performs
// the actual message transfer (memory-to-memory copy for co-located
// partitions; simulated bus for remote ones), so applications stay agnostic
// of partition placement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ipc/payload.hpp"
#include "util/ring_buffer.hpp"
#include "util/types.hpp"

namespace air::ipc {

enum class PortDirection : std::uint8_t { kSource, kDestination };

/// ARINC 653 queuing discipline for processes blocked on a communication
/// object: woken in FIFO order, or in priority order (higher priority
/// first, FIFO among equals).
enum class QueuingDiscipline : std::uint8_t { kFifo, kPriority };

struct Message {
  Payload payload;
  Ticks sent_at{0};
  PartitionId from_partition;
  TraceContext ctx;  // causal span context; zero when tracing is off
};

/// Sampling port: a single message slot; writes overwrite, reads do not
/// consume. A read is "valid" while the message age does not exceed the
/// port's refresh period.
class SamplingPort {
 public:
  SamplingPort(std::string name, PortDirection direction,
               std::size_t max_message_bytes, Ticks refresh_period)
      : name_(std::move(name)),
        direction_(direction),
        max_bytes_(max_message_bytes),
        refresh_period_(refresh_period) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] PortDirection direction() const { return direction_; }
  [[nodiscard]] std::size_t max_message_bytes() const { return max_bytes_; }
  [[nodiscard]] Ticks refresh_period() const { return refresh_period_; }

  /// Overwrite the slot. Returns false when the payload exceeds the
  /// configured maximum (the APEX layer maps that to INVALID_PARAM).
  [[nodiscard]] bool write(Message message);

  struct ReadResult {
    std::optional<Message> message;  // empty slot -> nullopt
    bool valid{false};               // age <= refresh period at `now`
  };
  [[nodiscard]] ReadResult read(Ticks now) const;

  [[nodiscard]] bool has_message() const { return slot_.has_value(); }
  void clear() { slot_.reset(); }

 private:
  std::string name_;
  PortDirection direction_;
  std::size_t max_bytes_;
  Ticks refresh_period_;
  std::optional<Message> slot_;
};

/// Queuing port: bounded FIFO; messages are consumed by reads. Overflow is
/// observable (ARINC 653 requires the sender to learn of it).
class QueuingPort {
 public:
  QueuingPort(std::string name, PortDirection direction,
              std::size_t max_message_bytes, std::size_t capacity)
      : name_(std::move(name)),
        direction_(direction),
        max_bytes_(max_message_bytes),
        fifo_(capacity) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] PortDirection direction() const { return direction_; }
  [[nodiscard]] std::size_t max_message_bytes() const { return max_bytes_; }
  [[nodiscard]] std::size_t capacity() const { return fifo_.capacity(); }
  [[nodiscard]] std::size_t depth() const { return fifo_.size(); }
  [[nodiscard]] bool full() const { return fifo_.full(); }
  [[nodiscard]] bool empty() const { return fifo_.empty(); }

  enum class SendStatus { kOk, kFull, kTooLarge };
  [[nodiscard]] SendStatus send(Message message);

  [[nodiscard]] std::optional<Message> receive();

  [[nodiscard]] std::uint64_t overflows() const { return overflows_; }
  void clear() { fifo_.clear(); }

 private:
  std::string name_;
  PortDirection direction_;
  std::size_t max_bytes_;
  util::RingBuffer<Message> fifo_;
  std::uint64_t overflows_{0};
};

}  // namespace air::ipc
