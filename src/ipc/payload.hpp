// Small-buffer / arena-backed message payload (hot-path flattening).
//
// ipc::Message used to carry its bytes in a std::string, which puts a heap
// allocation + deallocation on every copy a message makes through the stack
// (APEX service -> port slot -> router hop -> bus frame -> remote port).
// ARINC 653 ports bound their message size at configuration time and real
// missions overwhelmingly move small telemetry/command frames, so Payload
// stores up to kInlineBytes inline (copies are a memcpy, no allocator
// traffic) and services larger payloads from a power-of-two-bucketed
// free-list pool: a heap block released by a dying message is recycled by
// the next oversized message instead of round-tripping through the global
// allocator. The pool is thread-local (the parallel World driver runs
// modules on worker threads; blocks may migrate between pools, which is
// safe -- they are plain byte arrays) and bounded per bucket.
//
// Determinism: where a payload's bytes live never influences simulation
// behaviour -- only the bytes themselves are observable (traces, digests,
// oracle fingerprints hash payload *contents*). The pool therefore needs no
// cross-run stability, and the fi bus fault hooks (drop/corrupt/delay)
// replay byte-identically on pooled and fresh blocks alike
// (tests/test_payload.cpp asserts it).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <ostream>
#include <string>
#include <string_view>

namespace air::ipc {

class Payload {
 public:
  /// Messages up to this size (covers every stock mission port) live
  /// inline; larger ones use a pooled heap block.
  static constexpr std::size_t kInlineBytes = 64;

  Payload() = default;
  Payload(const char* bytes) : Payload(std::string_view{bytes}) {}
  Payload(std::string_view bytes) { assign(bytes); }
  Payload(const std::string& bytes) { assign(bytes); }

  Payload(const Payload& other) { assign(other.view()); }
  Payload(Payload&& other) noexcept { steal(other); }
  Payload& operator=(const Payload& other) {
    if (this != &other) assign(other.view());
    return *this;
  }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  Payload& operator=(std::string_view bytes) {
    assign(bytes);
    return *this;
  }
  ~Payload() { release(); }

  void assign(std::string_view bytes);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const char* data() const {
    return heap_ != nullptr ? heap_ : inline_.data();
  }
  [[nodiscard]] char* data() {
    return heap_ != nullptr ? heap_ : inline_.data();
  }
  [[nodiscard]] char& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const char& operator[](std::size_t i) const {
    return data()[i];
  }
  [[nodiscard]] std::string_view view() const { return {data(), size_}; }
  operator std::string_view() const { return view(); }
  [[nodiscard]] std::string str() const { return std::string{view()}; }
  /// True while the bytes fit the inline buffer (no pool block held).
  [[nodiscard]] bool inline_storage() const { return heap_ == nullptr; }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.view() == b.view();
  }
  friend bool operator==(const Payload& a, std::string_view b) {
    return a.view() == b;
  }
  // Exact-match overload for string literals: without it, `p == "x"` is
  // ambiguous between the string_view comparison and Payload's converting
  // constructor.
  friend bool operator==(const Payload& a, const char* b) {
    return a.view() == std::string_view{b};
  }
  friend std::ostream& operator<<(std::ostream& os, const Payload& p) {
    return os << p.view();
  }

  // --- pool observability (tests / EXPERIMENTS) ---
  struct PoolStats {
    std::uint64_t heap_allocs{0};   // blocks taken from the allocator
    std::uint64_t pool_reuses{0};   // blocks recycled from the free list
    std::uint64_t pool_returns{0};  // blocks returned to the free list
    std::size_t free_blocks{0};     // blocks currently parked
  };
  /// This thread's pool counters.
  [[nodiscard]] static PoolStats pool_stats();
  /// Drop every parked block of this thread's pool (tests isolate stats).
  static void trim_pool();

 private:
  void release();
  void steal(Payload& other) noexcept {
    size_ = other.size_;
    heap_ = other.heap_;
    heap_capacity_ = other.heap_capacity_;
    if (heap_ == nullptr && size_ > 0) {
      std::memcpy(inline_.data(), other.inline_.data(), size_);
    }
    other.heap_ = nullptr;
    other.heap_capacity_ = 0;
    other.size_ = 0;
  }

  std::size_t size_{0};
  char* heap_{nullptr};  // nullptr = inline storage
  std::size_t heap_capacity_{0};
  std::array<char, kInlineBytes> inline_;
};

}  // namespace air::ipc
