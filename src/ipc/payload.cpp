#include "ipc/payload.hpp"

#include <vector>

namespace air::ipc {
namespace {

/// Free-list pool for heap payload blocks, bucketed by power-of-two
/// capacity. Thread-local: the parallel World driver ticks modules on
/// worker threads, and an unsynchronized global pool would race (blocks
/// are plain bytes, so migrating between per-thread pools is harmless).
struct Pool {
  static constexpr std::size_t kMinCapacity = 128;       // first bucket
  static constexpr std::size_t kMaxPooled = 1u << 20;    // beyond: plain new
  static constexpr std::size_t kBuckets = 14;            // 128 .. 1 MiB
  static constexpr std::size_t kMaxPerBucket = 64;       // parked-block cap

  std::vector<char*> free_lists[kBuckets];
  Payload::PoolStats stats;

  static std::size_t bucket_capacity(std::size_t bucket) {
    return kMinCapacity << bucket;
  }
  /// Smallest bucket whose capacity holds `n` bytes; kBuckets if unpooled.
  static std::size_t bucket_for(std::size_t n) {
    std::size_t bucket = 0;
    std::size_t cap = kMinCapacity;
    while (cap < n && bucket < kBuckets) {
      cap <<= 1;
      ++bucket;
    }
    return bucket;
  }

  char* acquire(std::size_t n, std::size_t& capacity_out) {
    const std::size_t bucket = bucket_for(n);
    if (bucket >= kBuckets) {
      capacity_out = n;
      ++stats.heap_allocs;
      return new char[n];
    }
    capacity_out = bucket_capacity(bucket);
    auto& list = free_lists[bucket];
    if (!list.empty()) {
      char* block = list.back();
      list.pop_back();
      --stats.free_blocks;
      ++stats.pool_reuses;
      return block;
    }
    ++stats.heap_allocs;
    return new char[capacity_out];
  }

  void recycle(char* block, std::size_t capacity) {
    const std::size_t bucket = bucket_for(capacity);
    if (bucket < kBuckets && bucket_capacity(bucket) == capacity) {
      auto& list = free_lists[bucket];
      if (list.size() < kMaxPerBucket) {
        list.push_back(block);
        ++stats.free_blocks;
        ++stats.pool_returns;
        return;
      }
    }
    delete[] block;
  }

  void trim() {
    for (auto& list : free_lists) {
      for (char* block : list) delete[] block;
      list.clear();
    }
    stats.free_blocks = 0;
  }

  ~Pool() { trim(); }
};

Pool& pool() {
  thread_local Pool instance;
  return instance;
}

}  // namespace

void Payload::assign(std::string_view bytes) {
  if (bytes.size() <= kInlineBytes) {
    // memmove: assign from a view into our own heap block must survive the
    // switch to inline storage.
    std::memmove(inline_.data(), bytes.data(), bytes.size());
    size_ = bytes.size();
    if (heap_ != nullptr) {
      pool().recycle(heap_, heap_capacity_);
      heap_ = nullptr;
      heap_capacity_ = 0;
    }
    return;
  }
  if (heap_ == nullptr || heap_capacity_ < bytes.size()) {
    std::size_t capacity = 0;
    char* block = pool().acquire(bytes.size(), capacity);
    std::memcpy(block, bytes.data(), bytes.size());
    if (heap_ != nullptr) pool().recycle(heap_, heap_capacity_);
    heap_ = block;
    heap_capacity_ = capacity;
  } else {
    std::memmove(heap_, bytes.data(), bytes.size());
  }
  size_ = bytes.size();
}

void Payload::release() {
  if (heap_ != nullptr) {
    pool().recycle(heap_, heap_capacity_);
    heap_ = nullptr;
    heap_capacity_ = 0;
  }
  size_ = 0;
}

Payload::PoolStats Payload::pool_stats() { return pool().stats; }

void Payload::trim_pool() { pool().trim(); }

}  // namespace air::ipc
