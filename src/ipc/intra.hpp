// Intrapartition communication object state (ARINC 653 P1: buffers,
// blackboards, semaphores, events).
//
// Passive state only -- the APEX layer owns the per-object wait queues and
// implements blocking-with-timeout using the POS kernel primitives, because
// which process waits and who is woken first is a *scheduling* concern.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/ring_buffer.hpp"
#include "util/types.hpp"

namespace air::ipc {

/// Buffer: bounded FIFO of messages between processes of one partition.
class BufferState {
 public:
  BufferState(std::string name, std::size_t max_message_bytes,
              std::size_t capacity)
      : name_(std::move(name)), max_bytes_(max_message_bytes), fifo_(capacity) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t max_message_bytes() const { return max_bytes_; }
  [[nodiscard]] bool full() const { return fifo_.full(); }
  [[nodiscard]] bool empty() const { return fifo_.empty(); }
  [[nodiscard]] std::size_t depth() const { return fifo_.size(); }
  [[nodiscard]] std::size_t capacity() const { return fifo_.capacity(); }

  [[nodiscard]] bool push(std::string message) {
    if (message.size() > max_bytes_) return false;
    return fifo_.push(std::move(message));
  }
  [[nodiscard]] std::optional<std::string> pop() {
    std::string out;
    if (!fifo_.pop(out)) return std::nullopt;
    return out;
  }
  void clear() { fifo_.clear(); }

 private:
  std::string name_;
  std::size_t max_bytes_;
  util::RingBuffer<std::string> fifo_;
};

/// Blackboard: one message displayed until cleared or overwritten; reads do
/// not consume.
class BlackboardState {
 public:
  BlackboardState(std::string name, std::size_t max_message_bytes)
      : name_(std::move(name)), max_bytes_(max_message_bytes) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t max_message_bytes() const { return max_bytes_; }
  [[nodiscard]] bool displayed() const { return message_.has_value(); }

  [[nodiscard]] bool display(std::string message) {
    if (message.size() > max_bytes_) return false;
    message_ = std::move(message);
    return true;
  }
  [[nodiscard]] const std::optional<std::string>& read() const {
    return message_;
  }
  void clear() { message_.reset(); }

 private:
  std::string name_;
  std::size_t max_bytes_;
  std::optional<std::string> message_;
};

/// Counting semaphore value (wait queue lives in APEX).
class SemaphoreState {
 public:
  SemaphoreState(std::string name, std::int32_t initial, std::int32_t maximum)
      : name_(std::move(name)), value_(initial), max_(maximum) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int32_t value() const { return value_; }
  [[nodiscard]] std::int32_t maximum() const { return max_; }

  /// Try to take one unit; false when the value is zero (caller blocks).
  [[nodiscard]] bool try_wait() {
    if (value_ <= 0) return false;
    --value_;
    return true;
  }
  /// Return one unit; false on overflow above the configured maximum.
  [[nodiscard]] bool signal() {
    if (value_ >= max_) return false;
    ++value_;
    return true;
  }

 private:
  std::string name_;
  std::int32_t value_;
  std::int32_t max_;
};

/// Binary event (up/down) -- processes wait for "up".
class EventState {
 public:
  explicit EventState(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool up() const { return up_; }
  void set() { up_ = true; }
  void reset() { up_ = false; }

 private:
  std::string name_;
  bool up_{false};
};

}  // namespace air::ipc
