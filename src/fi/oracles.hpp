// System-wide containment oracles.
//
// A fault campaign flies every mission twice -- once clean (the reference)
// and once with the plan armed -- and compares fingerprints of everything a
// *non-target* partition could observe. The oracles encode the paper's
// robustness claims:
//
//  * spatial: a fault aimed at one partition leaves every other partition's
//    console output, containment-relevant event sequence and memory content
//    byte-identical to the fault-free run (and the PMK region untouched);
//  * temporal: the partition scheduling windows (dispatch/preempt sequence)
//    of healthy partitions are unperturbed; schedule switches only ever
//    happen at MTF boundaries (Sect. 4.2);
//  * hm: every injected error surfaces in the Health Monitor with the
//    configured routing (process-level errors reach the partition's error
//    handler, module-level hardware faults take the configured action);
//  * liveness: the module neither stops nor loses ticks -- it reaches the
//    same end time as the reference run.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "fi/fault_plan.hpp"
#include "fi/injector.hpp"
#include "hm/health_monitor.hpp"
#include "system/module.hpp"

namespace air::fi {

/// Per-partition observation fingerprint.
struct PartitionArtifacts {
  std::vector<std::string> console;
  std::uint64_t event_digest{0};   // containment-relevant trace events
  std::uint64_t window_digest{0};  // partition dispatch/preempt sequence
  std::uint64_t memory_digest{0};  // app-data physical memory content
  std::uint64_t deadline_misses{0};
};

/// Per-module observation fingerprint, taken after a mission completes.
struct ModuleArtifacts {
  bool stopped{false};
  Ticks end_time{0};
  std::uint64_t pmk_digest{0};            // PMK region memory content
  std::uint64_t misaligned_switches{0};   // schedule switches off MTF edges
  std::uint64_t trace_digest{0};          // full trace text (replay checks)
  std::vector<PartitionArtifacts> partitions;
  std::vector<hm::ErrorReport> hm_log;
  // Online observability plane (when the flown config enabled it).
  bool online_enabled{false};
  std::uint64_t watchdog_breaches{0};
  std::vector<telemetry::HealthEvent> health;
};

[[nodiscard]] ModuleArtifacts collect_artifacts(system::Module& module,
                                                Ticks mtf);

/// One violated containment claim.
struct Breach {
  std::string oracle;  // "spatial" | "temporal" | "hm" | "liveness"
  std::string detail;
};

/// What the plan authorises to differ from the reference run.
struct OracleConfig {
  Ticks mtf{1300};
  /// Partitions of module 0 the plan targets: their own observables may
  /// legitimately change; containment is about everyone else.
  std::set<std::int32_t> target_partitions;
  /// Plan carries bus faults: downstream modules receive a degraded frame
  /// stream, so only liveness is asserted for modules > 0.
  bool exclude_remote_modules{false};
  /// Plan carries schedule storms: window layout legitimately changes
  /// module-wide, so event/window identity is replaced by the invariants
  /// "switches only at MTF boundaries" and "no new deadline misses".
  bool relax_event_identity{false};
};

/// Derive the oracle configuration from a plan's injection list.
[[nodiscard]] OracleConfig oracle_config_for(const FaultPlan& plan, Ticks mtf);

/// Spatial + temporal + liveness: reference vs faulted fingerprints.
[[nodiscard]] std::vector<Breach> compare_runs(
    const std::vector<ModuleArtifacts>& reference,
    const std::vector<ModuleArtifacts>& faulted, const OracleConfig& config);

/// Expected Health-Monitor routing of injected errors (the *stock* policy;
/// the campaign asserts it even against deliberately weakened configs --
/// that is how a weakened config is flagged).
struct HmExpectations {
  /// Process-level injected errors must reach the partition error handler.
  bool handler_for_process_errors{true};
  /// Required module-table response to the spurious-interrupt hardware
  /// fault (anything harsher kills the module).
  hm::RecoveryAction spurious_interrupt_action{hm::RecoveryAction::kIgnore};
};

/// HM oracle: every applied injection with an error-routing contract must
/// show up in the faulted run's HM log with the expected handling.
[[nodiscard]] std::vector<Breach> check_hm(
    const std::vector<InjectionRecord>& records,
    const ModuleArtifacts& faulted, const HmExpectations& expect, Ticks mtf);

/// Watchdog oracle, for missions flown with the online plane enabled:
///  * silence -- a clean reference flight must raise zero HealthEvents
///    (any fire there means a miscalibrated threshold or a real SLO debt);
///  * completeness -- every partition of module 0 that started missing
///    deadlines under the plan must be named by a kDeadlineMissRate
///    HealthEvent of the faulted run (the detectors detect).
/// No-op for artifacts collected without the plane.
[[nodiscard]] std::vector<Breach> check_watchdogs(
    const std::vector<ModuleArtifacts>& reference,
    const std::vector<ModuleArtifacts>& faulted);

}  // namespace air::fi
