// Fault-plan execution.
//
// Injector is the module-side half: a system::TickHook that applies each
// planned injection at the end of its exact tick. Because the time-warp
// engine bounds its spans by TickHook::next_event() and every World driver
// funnels through tick_once(), an armed plan replays byte-identically under
// per-tick, warped, lockstep and parallel execution.
//
// BusInjector is the bus-side half: planned frame faults keyed on the
// deterministic TDMA transmit sequence number, installed as the Bus fault
// hook.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fi/fault_plan.hpp"
#include "net/bus.hpp"
#include "system/module.hpp"

namespace air::fi {

/// Outcome of one attempted injection (the campaign report material).
struct InjectionRecord {
  std::size_t index{0};  // position in the plan's injection list
  Ticks tick{0};
  FaultClass fault{FaultClass::kMemoryBitFlip};
  std::int32_t target{-1};
  bool applied{false};
  std::string note;
};

class Injector : public system::TickHook {
 public:
  explicit Injector(FaultPlan plan);

  /// Install this injector as the module's tick hook. The injector must
  /// outlive the module's runs.
  void arm(system::Module& module) { module.set_tick_hook(this); }

  [[nodiscard]] Ticks next_event(Ticks now) const override;
  void on_tick(system::Module& module, Ticks now) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const std::vector<InjectionRecord>& log() const {
    return log_;
  }

  /// Name of the dormant CPU-hog process kProcessStuck starts; campaign
  /// configurations create one per partition.
  static constexpr const char* kHogProcessName = "fi_hog";

 private:
  void apply(system::Module& module, Ticks now, const Injection& injection,
             InjectionRecord& record);

  FaultPlan plan_;
  std::vector<std::size_t> module_events_;  // plan indices, bus faults out
  std::size_t cursor_{0};                   // next entry of module_events_
  std::vector<InjectionRecord> log_;
};

class BusInjector {
 public:
  explicit BusInjector(const FaultPlan& plan);

  /// Install as the bus's fault hook. Must outlive the bus's runs.
  void arm(net::Bus& bus);

  [[nodiscard]] net::Bus::FaultDecision decide(std::uint64_t seq) const;
  [[nodiscard]] std::size_t planned() const { return decisions_.size(); }

 private:
  std::map<std::uint64_t, net::Bus::FaultDecision> decisions_;
};

}  // namespace air::fi
