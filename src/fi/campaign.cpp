#include "fi/campaign.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "system/world.hpp"

namespace air::fi {

namespace {

using scenarios::kFig8Mtf;

/// One flown mission: per-module fingerprints plus, for faulted runs, the
/// injection log and the root-cause material of module 0.
struct MissionArtifacts {
  std::vector<ModuleArtifacts> modules;
  std::vector<InjectionRecord> records;
  std::string detail;
};

std::string describe_run(system::Module& module,
                         const std::vector<InjectionRecord>& records) {
  std::ostringstream out;
  for (const InjectionRecord& record : records) {
    out << "  inject @" << record.tick << " " << to_string(record.fault)
        << " target=" << record.target
        << (record.applied ? " applied" : " skipped") << " (" << record.note
        << ")\n";
  }
  for (const telemetry::Anomaly& anomaly : module.spans().anomalies()) {
    out << "  anomaly: partition " << anomaly.partition << " process "
        << anomaly.process << " missed deadline " << anomaly.deadline
        << " (detected @" << anomaly.detected_at << ")\n";
    for (const telemetry::CauseLink& link : anomaly.chain) {
      out << "    <- " << link.what << " @" << link.at;
      if (!link.detail.empty()) out << " (" << link.detail << ")";
      out << "\n";
    }
  }
  return out.str();
}

MissionArtifacts fly_mission(const CampaignOptions& options,
                             bool world_mission, const FaultPlan* plan) {
  const Ticks mission_ticks = options.mtfs * kFig8Mtf;
  MissionArtifacts result;

  if (!world_mission) {
    system::Module module(campaign_fig8_config(options.weaken_hm));
    Injector injector(plan != nullptr ? *plan : FaultPlan{});
    if (plan != nullptr) injector.arm(module);
    module.run(mission_ticks);
    result.modules.push_back(collect_artifacts(module, kFig8Mtf));
    result.records = injector.log();
    if (plan != nullptr) result.detail = describe_run(module, result.records);
    return result;
  }

  // Two-module mission: the Fig. 8 prototype's science channel additionally
  // fans out over the TDMA bus to a ground-segment archiver.
  system::ModuleConfig fig8 = campaign_fig8_config(options.weaken_hm);
  fig8.id = ModuleId{0};
  for (ipc::ChannelConfig& channel : fig8.channels) {
    if (channel.kind == ipc::ChannelKind::kQueuing) {
      channel.remote_destinations.push_back(
          {ModuleId{1}, PartitionId{0}, "SCI_IN"});
    }
  }
  system::World world(
      {.slot_length = 10, .frames_per_slot = 2, .propagation_delay = 2});
  system::Module& prototype = world.add_module(std::move(fig8));
  system::Module& ground = world.add_module(campaign_ground_config());
  world.set_workers(options.workers);
  // Bus plane with the same window as the module planes, so bus digests and
  // module digests close on the same boundaries.
  world.enable_online(prototype.config().telemetry.online);

  Injector injector(plan != nullptr ? *plan : FaultPlan{});
  BusInjector bus_injector(plan != nullptr ? *plan : FaultPlan{});
  if (plan != nullptr) {
    injector.arm(prototype);
    bus_injector.arm(world.bus());
  }
  world.run(mission_ticks);
  result.modules.push_back(collect_artifacts(prototype, kFig8Mtf));
  result.modules.push_back(collect_artifacts(ground, kFig8Mtf));
  result.records = injector.log();
  if (plan != nullptr) result.detail = describe_run(prototype, result.records);
  return result;
}

std::vector<Breach> breaches_for(const CampaignOptions& options,
                                 const FaultPlan& plan, bool world_mission,
                                 const std::vector<ModuleArtifacts>& reference,
                                 MissionArtifacts* faulted_out) {
  MissionArtifacts faulted = fly_mission(options, world_mission, &plan);
  OracleConfig config = oracle_config_for(plan, kFig8Mtf);
  if (world_mission && !config.target_partitions.empty()) {
    // A fault authorized to perturb partition P is also authorized to
    // change what P transmits: when P feeds a cross-module channel, the
    // downstream module legitimately sees a degraded stream (same ruling
    // as for bus faults), so only liveness is asserted for it.
    const system::ModuleConfig fig8 = campaign_fig8_config(options.weaken_hm);
    for (const ipc::ChannelConfig& channel : fig8.channels) {
      // fly_mission fans exactly the queuing (science) channel out to the
      // ground module.
      if (channel.kind != ipc::ChannelKind::kQueuing) continue;
      const auto source =
          static_cast<std::int32_t>(channel.source.partition.value());
      if (config.target_partitions.count(source) != 0) {
        config.exclude_remote_modules = true;
      }
    }
  }
  std::vector<Breach> breaches =
      compare_runs(reference, faulted.modules, config);
  const std::vector<Breach> hm = check_hm(
      faulted.records, faulted.modules.front(), HmExpectations{}, kFig8Mtf);
  breaches.insert(breaches.end(), hm.begin(), hm.end());
  const std::vector<Breach> wd = check_watchdogs(reference, faulted.modules);
  breaches.insert(breaches.end(), wd.begin(), wd.end());
  if (faulted_out != nullptr) *faulted_out = std::move(faulted);
  return breaches;
}

}  // namespace

system::ModuleConfig campaign_fig8_config(bool weaken_hm) {
  using pos::ScriptBuilder;
  // The stock Fig. 8 prototype, minus the built-in faulty process (the
  // campaign injects its own faults and the reference run must be clean).
  system::ModuleConfig config =
      scenarios::fig8_config({.with_faulty_process = false});
  config.name = weaken_hm ? "fig8-campaign-weak" : "fig8-campaign";

  for (system::PartitionConfig& partition : config.partitions) {
    // The kProcessStuck vehicle: a dormant highest-priority CPU hog. Once
    // started it starves its own partition -- and must starve nothing else.
    system::ProcessConfig hog;
    hog.attrs.name = Injector::kHogProcessName;
    hog.attrs.period = kInfiniteTime;  // aperiodic
    hog.attrs.time_capacity = kInfiniteTime;
    hog.attrs.priority = 0;
    hog.attrs.script = ScriptBuilder{}.compute(1'000'000).jump(0).build();
    hog.auto_start = false;
    partition.processes.push_back(std::move(hog));

    if (!weaken_hm) {
      // ARINC 653 application error handler: process-level errors land
      // here first (Sect. 2.4). The weakened configuration omits it.
      partition.error_handler =
          ScriptBuilder{}.log("hm: error handled").stop_self().build();
    }
    // Explicit fallback routing for the injected process-level codes.
    partition.hm_table.set(hm::ErrorCode::kMemoryViolation,
                           hm::ErrorLevel::kProcess,
                           hm::RecoveryAction::kStopProcess);
    partition.hm_table.set(hm::ErrorCode::kApplicationError,
                           hm::ErrorLevel::kProcess,
                           hm::RecoveryAction::kStopProcess);
  }

  if (!weaken_hm) {
    // A spurious bus interrupt is survivable noise: log and carry on. The
    // weakened configuration drops the entry, so the module table falls
    // back to its kStopModule default -- which the campaign must flag.
    config.module_hm_table.set(hm::ErrorCode::kHardwareFault,
                               hm::ErrorLevel::kModule,
                               hm::RecoveryAction::kIgnore);
  }

  // Every campaign mission flies with the online observability plane: the
  // watchdog oracle asserts silence on clean flights and detection under
  // faulted ones. 650 divides the Fig. 8 MTF (1300), so whole-MTF missions
  // close their last window exactly at the final tick -- every deferred
  // detection lands inside a closed window.
  config.telemetry.online.enabled = true;
  config.telemetry.online.window = 650;
  return config;
}

system::ModuleConfig campaign_ground_config() {
  using pos::ScriptBuilder;
  system::ModuleConfig config;
  config.id = ModuleId{1};
  config.name = "ground";

  system::PartitionConfig ground;
  ground.name = "GROUND";
  ground.queuing_ports.push_back(
      {"SCI_IN", ipc::PortDirection::kDestination, 64, 16});
  system::ProcessConfig archiver;
  archiver.attrs.name = "gs_archiver";
  archiver.attrs.priority = 10;
  archiver.attrs.script = ScriptBuilder{}
                              .queuing_receive(0)
                              .log("science frame archived")
                              .build();
  ground.processes.push_back(std::move(archiver));
  config.partitions.push_back(std::move(ground));

  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = kFig8Mtf;
  schedule.requirements = {{PartitionId{0}, kFig8Mtf, kFig8Mtf}};
  schedule.windows = {{PartitionId{0}, 0, kFig8Mtf}};
  config.schedules = {schedule};
  config.telemetry.online.enabled = true;
  config.telemetry.online.window = 650;
  return config;
}

bool is_world_seed(const CampaignOptions& options, std::uint64_t seed) {
  return options.world_missions && seed % 3 == 0;
}

FaultPlan campaign_plan(const CampaignOptions& options, std::uint64_t seed) {
  PlanSpec spec;
  const Ticks mission_ticks = options.mtfs * kFig8Mtf;
  spec.first_tick = 50;
  // Leave at least one MTF of slack after the last injection so deferred
  // detections (Algorithm 3 runs at the victim's next dispatch) land
  // inside the mission.
  spec.horizon = std::max<Ticks>(spec.first_tick, mission_ticks - 1500);
  spec.min_gap = kFig8Mtf;
  spec.partitions = 4;
  spec.max_injections = 4;
  spec.bus_seq_window = static_cast<std::uint64_t>(
      std::max<Ticks>(2, options.mtfs));
  spec.classes = {
      FaultClass::kMemoryBitFlip,     FaultClass::kRogueWrite,
      FaultClass::kClockTickDuplicate, FaultClass::kSpuriousInterrupt,
      FaultClass::kProcessOverrun,    FaultClass::kProcessStuck,
      FaultClass::kApplicationError,  FaultClass::kScheduleStorm,
  };
  if (is_world_seed(options, seed)) {
    spec.classes.push_back(FaultClass::kBusFrameDrop);
    spec.classes.push_back(FaultClass::kBusFrameCorrupt);
    spec.classes.push_back(FaultClass::kBusFrameDelay);
  }
  FaultPlan plan = generate_plan(spec, seed);
  if (options.weaken_hm && !plan.has_class(FaultClass::kApplicationError) &&
      !plan.has_class(FaultClass::kRogueWrite) &&
      !plan.has_class(FaultClass::kSpuriousInterrupt) &&
      !plan.injections.empty()) {
    // The weakened campaign probes the HM policy, so every plan carries at
    // least one injection whose containment contract involves the HM.
    Injection& first = plan.injections.front();
    first.fault = FaultClass::kApplicationError;
    first.target = static_cast<std::int32_t>(seed % 4);
    first.a = static_cast<std::int64_t>(seed % 2);
    first.b = 0;
  }
  return plan;
}

std::vector<Breach> evaluate_plan(const CampaignOptions& options,
                                  const FaultPlan& plan, bool world_mission,
                                  std::vector<InjectionRecord>* records_out,
                                  std::string* detail_out) {
  const MissionArtifacts reference =
      fly_mission(options, world_mission, nullptr);
  MissionArtifacts faulted;
  std::vector<Breach> breaches =
      breaches_for(options, plan, world_mission, reference.modules, &faulted);
  if (records_out != nullptr) *records_out = faulted.records;
  if (detail_out != nullptr) *detail_out = faulted.detail;
  return breaches;
}

FaultPlan minimize_plan(const CampaignOptions& options, const FaultPlan& plan,
                        bool world_mission) {
  const MissionArtifacts reference =
      fly_mission(options, world_mission, nullptr);
  FaultPlan current = plan;
  bool changed = true;
  while (changed && current.injections.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < current.injections.size(); ++i) {
      FaultPlan candidate = current;
      candidate.injections.erase(candidate.injections.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      if (!breaches_for(options, candidate, world_mission, reference.modules,
                        nullptr)
               .empty()) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

SeedResult run_seed(const CampaignOptions& options, std::uint64_t seed) {
  SeedResult result;
  result.seed = seed;
  result.world_mission = is_world_seed(options, seed);
  result.plan = campaign_plan(options, seed);

  const MissionArtifacts reference =
      fly_mission(options, result.world_mission, nullptr);
  MissionArtifacts faulted;
  result.breaches = breaches_for(options, result.plan, result.world_mission,
                                 reference.modules, &faulted);
  if (result.breaches.empty()) {
    result.minimized = result.plan;
    return result;
  }

  result.minimized =
      minimize_plan(options, result.plan, result.world_mission);
  MissionArtifacts minimized_run;
  const std::vector<Breach> minimized_breaches =
      breaches_for(options, result.minimized, result.world_mission,
                   reference.modules, &minimized_run);

  std::ostringstream report;
  report << "seed " << seed << " ("
         << (result.world_mission ? "world" : "module") << " mission, "
         << (options.weaken_hm ? "weakened" : "stock") << " config): "
         << result.breaches.size() << " containment breach(es)\n";
  for (const Breach& breach : result.breaches) {
    report << "  [" << breach.oracle << "] " << breach.detail << "\n";
  }
  report << "minimized reproducer (" << result.minimized.injections.size()
         << " injection(s), " << minimized_breaches.size()
         << " breach(es) on replay):\n";
  report << result.minimized.to_text();
  if (!minimized_run.detail.empty()) {
    report << "replay detail:\n" << minimized_run.detail;
  }
  result.report = report.str();
  return result;
}

std::vector<Breach> watchdog_selftest() {
  std::vector<Breach> failures;
  const auto fail = [&failures](std::string detail) {
    failures.push_back({"selftest", std::move(detail)});
  };

  CampaignOptions options;
  options.mtfs = 2;  // two major frames: inject in the first, detect early
  FaultPlan plan;
  plan.seed = 0;
  plan.injections.push_back(
      {/*tick=*/73, FaultClass::kProcessOverrun, /*target=*/0, /*a=*/0,
       /*b=*/0});

  const MissionArtifacts reference = fly_mission(options, false, nullptr);
  const MissionArtifacts faulted = fly_mission(options, false, &plan);
  const ModuleArtifacts& ref = reference.modules.front();
  const ModuleArtifacts& fav = faulted.modules.front();

  if (!ref.online_enabled || !fav.online_enabled) {
    fail("campaign config flew without the online plane");
    return failures;
  }
  if (ref.watchdog_breaches != 0) {
    fail("clean flight raised " + std::to_string(ref.watchdog_breaches) +
         " health event(s); watchdog thresholds are miscalibrated");
  }
  const telemetry::HealthEvent* deadline_event = nullptr;
  for (const telemetry::HealthEvent& event : fav.health) {
    if (event.kind == telemetry::Watchdog::kDeadlineMissRate &&
        event.partition == 0) {
      deadline_event = &event;
      break;
    }
  }
  if (deadline_event == nullptr) {
    fail("forced deadline miss on partition 0 but no deadline watchdog "
         "fired (" +
         std::to_string(fav.health.size()) + " health event(s) total)");
  } else if (deadline_event->cause == 0) {
    fail("deadline watchdog fired without a causal span: breach is not "
         "linked to the root-cause chain");
  }
  return failures;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult result;
  for (std::size_t i = 0; i < options.seeds; ++i) {
    const std::uint64_t seed = options.first_seed + i;
    SeedResult seed_result = run_seed(options, seed);
    ++result.seeds_run;
    result.injections_applied += seed_result.plan.injections.size();
    const bool breached = !seed_result.breaches.empty();
    if (options.verbose) {
      std::printf("fi: seed %llu (%s) %s\n",
                  static_cast<unsigned long long>(seed),
                  seed_result.world_mission ? "world" : "module",
                  breached ? "BREACH" : "ok");
    }
    if (!breached) continue;
    if (!options.out_dir.empty()) {
      const std::filesystem::path dir{options.out_dir};
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      const std::string stem = "seed_" + std::to_string(seed);
      std::ofstream plan_file(dir / (stem + "_plan.txt"), std::ios::binary);
      plan_file << seed_result.minimized.to_text();
      std::ofstream report_file(dir / (stem + "_report.txt"),
                                std::ios::binary);
      report_file << seed_result.report;
    }
    result.failures.push_back(std::move(seed_result));
  }
  return result;
}

}  // namespace air::fi
