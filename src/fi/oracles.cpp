#include "fi/oracles.hpp"

#include <algorithm>
#include <cstddef>

#include "pmk/spatial.hpp"

namespace air::fi {

namespace {

using util::EventKind;
using util::TraceEvent;

std::uint64_t digest_bytes(std::span<const std::byte> bytes,
                           std::uint64_t h = 1469598103934665603ULL) {
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fold_event(std::uint64_t h, const TraceEvent& event) {
  h = digest64(std::to_string(event.time), h);
  h = digest64(std::to_string(static_cast<int>(event.kind)), h);
  h = digest64(std::to_string(event.a), h);
  h = digest64(std::to_string(event.b), h);
  h = digest64(std::to_string(event.c), h);
  h = digest64(event.label, h);
  return h;
}

/// Containment-relevant, partition-attributed event kinds. Port traffic is
/// deliberately excluded: channels are *authorised* coupling, so a target
/// partition's degraded output legitimately changes what its peers receive.
bool containment_event(EventKind kind) {
  switch (kind) {
    case EventKind::kProcessDispatch:
    case EventKind::kProcessStateChange:
    case EventKind::kDeadlineRegistered:
    case EventKind::kDeadlineRemoved:
    case EventKind::kDeadlineMiss:
    case EventKind::kHmError:
    case EventKind::kHmAction:
    case EventKind::kPartitionModeChange:
    case EventKind::kScheduleChangeAction:
    case EventKind::kSpatialViolation:
    case EventKind::kClockParavirtTrap:
    case EventKind::kUser:
      return true;
    default:
      return false;
  }
}

std::uint64_t region_digest(system::Module& module, hal::PhysAddr base,
                            std::size_t bytes) {
  std::vector<std::byte> buffer(bytes);
  module.machine().memory().read(base, buffer);
  return digest_bytes(buffer);
}

const hm::ErrorReport* find_report(
    const std::vector<hm::ErrorReport>& log, hm::ErrorCode code,
    std::int32_t partition, Ticks from, Ticks to) {
  for (const hm::ErrorReport& report : log) {
    if (report.code != code) continue;
    if (report.time < from || report.time > to) continue;
    const std::int32_t p =
        report.partition.valid() ? report.partition.value() : -1;
    if (p != partition) continue;
    return &report;
  }
  return nullptr;
}

}  // namespace

ModuleArtifacts collect_artifacts(system::Module& module, Ticks mtf) {
  ModuleArtifacts art;
  art.stopped = module.stopped();
  art.end_time = module.now();
  art.trace_digest = digest64(module.trace().to_text());
  art.hm_log = module.health().log();
  art.pmk_digest = region_digest(module, module.spatial().pmk_region(),
                                 4096);  // covers the rogue-write target page
  if (const telemetry::OnlinePlane* plane = module.online()) {
    art.online_enabled = true;
    art.watchdog_breaches = plane->breaches();
    art.health = plane->events();
  }

  const std::size_t count = module.partition_count();
  art.partitions.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const PartitionId id{static_cast<std::int32_t>(i)};
    art.partitions[i].console = module.console(id);
    art.partitions[i].event_digest = digest64("events");
    art.partitions[i].window_digest = digest64("windows");
    if (const pmk::PartitionSpace* space = module.spatial().space(id)) {
      art.partitions[i].memory_digest =
          region_digest(module, space->app_data, space->config.app_data_bytes);
    }
  }

  for (const TraceEvent& event : module.trace().events()) {
    if (event.kind == EventKind::kScheduleSwitch) {
      if (mtf > 0 && event.time % mtf != 0) ++art.misaligned_switches;
      continue;
    }
    const bool window_event = event.kind == EventKind::kPartitionDispatch ||
                              event.kind == EventKind::kPartitionPreempt;
    if (!window_event && !containment_event(event.kind)) continue;
    if (event.a < 0 || static_cast<std::size_t>(event.a) >= count) continue;
    PartitionArtifacts& partition =
        art.partitions[static_cast<std::size_t>(event.a)];
    if (window_event) {
      partition.window_digest = fold_event(partition.window_digest, event);
    } else {
      partition.event_digest = fold_event(partition.event_digest, event);
      if (event.kind == EventKind::kDeadlineMiss) ++partition.deadline_misses;
    }
  }
  return art;
}

OracleConfig oracle_config_for(const FaultPlan& plan, Ticks mtf) {
  OracleConfig config;
  config.mtf = mtf;
  for (const Injection& in : plan.injections) {
    switch (in.fault) {
      case FaultClass::kMemoryBitFlip:
      case FaultClass::kRogueWrite:
      case FaultClass::kProcessOverrun:
      case FaultClass::kProcessStuck:
      case FaultClass::kApplicationError:
        if (in.target >= 0) config.target_partitions.insert(in.target);
        break;
      case FaultClass::kScheduleStorm:
        config.relax_event_identity = true;
        break;
      case FaultClass::kBusFrameDrop:
      case FaultClass::kBusFrameCorrupt:
      case FaultClass::kBusFrameDelay:
        config.exclude_remote_modules = true;
        break;
      case FaultClass::kClockTickDuplicate:
      case FaultClass::kSpuriousInterrupt:
        break;  // module-global, contained without partition-local effects
    }
  }
  return config;
}

std::vector<Breach> compare_runs(const std::vector<ModuleArtifacts>& reference,
                                 const std::vector<ModuleArtifacts>& faulted,
                                 const OracleConfig& config) {
  std::vector<Breach> breaches;
  const auto note = [&breaches](std::string oracle, std::string detail) {
    breaches.push_back({std::move(oracle), std::move(detail)});
  };

  for (std::size_t m = 0; m < reference.size() && m < faulted.size(); ++m) {
    const ModuleArtifacts& ref = reference[m];
    const ModuleArtifacts& fav = faulted[m];
    const std::string mod = "module " + std::to_string(m);

    // Liveness: the module must survive the plan and lose no time.
    if (fav.stopped) note("liveness", mod + " stopped");
    if (fav.end_time != ref.end_time) {
      note("liveness", mod + " ended at " + std::to_string(fav.end_time) +
                           " instead of " + std::to_string(ref.end_time));
    }
    if (fav.misaligned_switches != 0) {
      note("temporal", mod + ": " +
                           std::to_string(fav.misaligned_switches) +
                           " schedule switch(es) off the MTF boundary");
    }
    if (fav.pmk_digest != ref.pmk_digest) {
      note("spatial", mod + ": PMK memory region changed");
    }

    if (m > 0 && config.exclude_remote_modules) continue;

    for (std::size_t p = 0;
         p < ref.partitions.size() && p < fav.partitions.size(); ++p) {
      if (m == 0 &&
          config.target_partitions.count(static_cast<std::int32_t>(p)) > 0) {
        continue;  // the plan's own victim; its state may change
      }
      const PartitionArtifacts& refp = ref.partitions[p];
      const PartitionArtifacts& favp = fav.partitions[p];
      const std::string where = mod + " partition " + std::to_string(p);
      if (favp.console != refp.console) {
        note("spatial", where + ": console output diverged");
      }
      if (favp.memory_digest != refp.memory_digest) {
        note("spatial", where + ": memory content changed");
      }
      if (config.relax_event_identity) {
        // Storms legitimately move windows module-wide; the claim left is
        // that no healthy partition started missing deadlines.
        if (favp.deadline_misses != refp.deadline_misses) {
          note("temporal",
               where + ": deadline misses " +
                   std::to_string(favp.deadline_misses) + " vs " +
                   std::to_string(refp.deadline_misses));
        }
        continue;
      }
      if (favp.event_digest != refp.event_digest) {
        note("spatial", where + ": event sequence diverged");
      }
      if (favp.window_digest != refp.window_digest) {
        note("temporal", where + ": partition windows perturbed");
      }
    }
  }
  return breaches;
}

std::vector<Breach> check_hm(const std::vector<InjectionRecord>& records,
                             const ModuleArtifacts& faulted,
                             const HmExpectations& expect, Ticks mtf) {
  std::vector<Breach> breaches;
  const auto note = [&breaches](std::string oracle, std::string detail) {
    breaches.push_back({std::move(oracle), std::move(detail)});
  };

  for (const InjectionRecord& record : records) {
    if (!record.applied) continue;
    const std::string what = std::string{to_string(record.fault)} + " @" +
                             std::to_string(record.tick);
    switch (record.fault) {
      case FaultClass::kRogueWrite: {
        if (record.note == "write reached memory") {
          note("spatial", what + ": cross-partition write was not blocked");
          break;
        }
        const hm::ErrorReport* report =
            find_report(faulted.hm_log, hm::ErrorCode::kMemoryViolation,
                        record.target, record.tick, record.tick);
        if (report == nullptr) {
          note("hm", what + ": memory violation never reached the HM");
        } else if (expect.handler_for_process_errors &&
                   !report->handled_by_error_handler) {
          note("hm", what + ": error bypassed the partition error handler");
        }
        break;
      }
      case FaultClass::kApplicationError: {
        const hm::ErrorReport* report =
            find_report(faulted.hm_log, hm::ErrorCode::kApplicationError,
                        record.target, record.tick, record.tick);
        if (report == nullptr) {
          note("hm", what + ": application error never reached the HM");
        } else if (expect.handler_for_process_errors &&
                   !report->handled_by_error_handler) {
          note("hm", what + ": error bypassed the partition error handler");
        }
        break;
      }
      case FaultClass::kSpuriousInterrupt: {
        const hm::ErrorReport* report =
            find_report(faulted.hm_log, hm::ErrorCode::kHardwareFault, -1,
                        record.tick, record.tick);
        if (report == nullptr) {
          note("hm", what + ": hardware fault never reached the HM");
        } else if (report->action_taken !=
                   expect.spurious_interrupt_action) {
          note("hm", what + ": module table answered '" +
                         to_string(report->action_taken) + "' (expected '" +
                         to_string(expect.spurious_interrupt_action) + "')");
        }
        break;
      }
      case FaultClass::kProcessOverrun: {
        // Detection happens at the target's next dispatch (Algorithm 3),
        // within its next scheduling window -- bounded by two MTFs.
        const hm::ErrorReport* report =
            find_report(faulted.hm_log, hm::ErrorCode::kDeadlineMissed,
                        record.target, record.tick, record.tick + 2 * mtf);
        if (report == nullptr) {
          note("hm", what + ": forced deadline miss was never detected");
        }
        break;
      }
      default:
        break;  // no HM contract for this class
    }
  }
  return breaches;
}

std::vector<Breach> check_watchdogs(
    const std::vector<ModuleArtifacts>& reference,
    const std::vector<ModuleArtifacts>& faulted) {
  std::vector<Breach> breaches;
  const auto note = [&breaches](std::string detail) {
    breaches.push_back({"watchdog", std::move(detail)});
  };

  for (std::size_t m = 0; m < reference.size(); ++m) {
    const ModuleArtifacts& ref = reference[m];
    if (!ref.online_enabled) continue;
    // Silence: a clean flight that trips an SLO watchdog means either a
    // miscalibrated threshold or a genuine timing debt -- both are campaign
    // findings, not noise to average away.
    if (ref.watchdog_breaches != 0) {
      std::string detail = "module " + std::to_string(m) + ": clean flight " +
                           "raised " + std::to_string(ref.watchdog_breaches) +
                           " health event(s)";
      if (!ref.health.empty()) {
        detail += ", first " +
                  std::string{telemetry::to_string(ref.health.front().kind)} +
                  " @" + std::to_string(ref.health.front().tick);
      }
      note(std::move(detail));
    }
  }

  // Completeness, on the injected module only (module 0 hosts the plan):
  // every partition that started missing deadlines under the plan must be
  // named by a deadline watchdog fire. A stopped module may have died before
  // its next window boundary, so the claim only holds for survivors.
  if (!faulted.empty() && !reference.empty()) {
    const ModuleArtifacts& fav = faulted[0];
    const ModuleArtifacts& ref = reference[0];
    if (fav.online_enabled && !fav.stopped) {
      const std::size_t count =
          std::min(fav.partitions.size(), ref.partitions.size());
      for (std::size_t p = 0; p < count; ++p) {
        if (fav.partitions[p].deadline_misses <=
            ref.partitions[p].deadline_misses) {
          continue;
        }
        const auto named = [&fav, p](const telemetry::HealthEvent& event) {
          return event.kind == telemetry::Watchdog::kDeadlineMissRate &&
                 event.partition == static_cast<std::int32_t>(p);
        };
        if (std::none_of(fav.health.begin(), fav.health.end(), named)) {
          note("module 0 partition " + std::to_string(p) +
               " missed deadlines under the plan but no deadline watchdog "
               "fired");
        }
      }
    }
  }
  return breaches;
}

}  // namespace air::fi
