// Deterministic fault plans.
//
// A FaultPlan is a seeded, tick-stamped list of injections covering the
// fault taxonomy of the paper's robustness argument: memory upsets and
// rogue cross-partition writes (spatial partitioning, Sect. 2.1/Fig. 3),
// clock and interrupt anomalies (Sect. 2.5), process overruns and stuck
// processes (temporal partitioning, Sect. 3), corrupted/dropped/reordered
// bus frames (inter-module communication) and schedule-switch storms
// (mode-based schedules, Sect. 4.2).
//
// Plans are plain data with a stable text form, so a failing campaign seed
// can be written to disk, shrunk to a minimal reproducer and replayed
// byte-identically by any driver (per-tick, time-warped, lockstep or
// parallel World execution).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace air::fi {

/// The fault taxonomy (see DESIGN.md section 9 for the full table).
/// `a` / `b` are per-class parameters, documented per enumerator.
enum class FaultClass : std::uint8_t {
  kMemoryBitFlip = 0,   // a = byte offset into app data, b = bit index
  kRogueWrite,          // a = virtual address (0 = the PMK region base)
  kClockTickDuplicate,  // a = number of duplicated timer periods
  kSpuriousInterrupt,   // (raises the bus line outside any transfer)
  kProcessOverrun,      // a = process index (deadline forced to "now")
  kProcessStuck,        // (starts the dormant CPU-hog process)
  kApplicationError,    // a = process index
  kScheduleStorm,       // a = schedule id to request
  kBusFrameDrop,        // a = bus transmit sequence number
  kBusFrameCorrupt,     // a = bus transmit sequence number
  kBusFrameDelay,       // a = transmit sequence, b = extra delay ticks
};

inline constexpr std::size_t kFaultClassCount = 11;

[[nodiscard]] const char* to_string(FaultClass fault);
[[nodiscard]] bool fault_class_from_string(std::string_view text,
                                           FaultClass& out);

/// Bus-side faults act at the TDMA transmit point (BusInjector); everything
/// else acts on a module via the per-tick hook (Injector).
[[nodiscard]] bool is_bus_fault(FaultClass fault);

/// One scheduled fault.
struct Injection {
  Ticks tick{0};  // module tick at whose end the fault lands (bus: unused)
  FaultClass fault{FaultClass::kMemoryBitFlip};
  std::int32_t target{-1};  // target partition; -1 = module-global
  std::int64_t a{0};
  std::int64_t b{0};

  friend bool operator==(const Injection&, const Injection&) = default;
};

/// A deterministic campaign case: the seed that generated it plus the
/// injection list (kept sorted by tick).
struct FaultPlan {
  std::uint64_t seed{0};
  std::vector<Injection> injections;

  void sort();
  [[nodiscard]] bool has_class(FaultClass fault) const;

  /// Stable text form ("# air fault plan v1"); the reproducer file format.
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static bool from_text(const std::string& text, FaultPlan& out);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Generation envelope for seeded plans.
struct PlanSpec {
  Ticks first_tick{50};        // earliest injection tick
  Ticks horizon{3700};         // latest injection tick
  Ticks min_gap{1300};         // minimum spacing between injections (1 MTF
                               // by default: lets HM handlers retire between
                               // faults so oracles stay attributable)
  std::int32_t partitions{4};
  std::vector<FaultClass> classes;  // allowed classes (empty = none)
  std::size_t max_injections{4};
  std::uint64_t bus_seq_window{48};  // bus faults hit transmit seq [0, window)
  Ticks max_bus_delay{25};
};

/// Seeded plan generation: same spec + seed => identical plan.
[[nodiscard]] FaultPlan generate_plan(const PlanSpec& spec, std::uint64_t seed);

/// FNV-1a 64-bit digest; the trace/memory fingerprint used by the oracles
/// and the golden-trace regression tests.
[[nodiscard]] constexpr std::uint64_t digest64(
    std::string_view text, std::uint64_t h = 1469598103934665603ULL) {
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace air::fi
