#include "fi/injector.hpp"

#include <span>

#include "pmk/spatial.hpp"

namespace air::fi {

namespace {

using util::EventKind;

}  // namespace

Injector::Injector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.sort();
  for (std::size_t i = 0; i < plan_.injections.size(); ++i) {
    if (!is_bus_fault(plan_.injections[i].fault)) module_events_.push_back(i);
  }
}

Ticks Injector::next_event(Ticks now) const {
  for (std::size_t i = cursor_; i < module_events_.size(); ++i) {
    const Ticks tick = plan_.injections[module_events_[i]].tick;
    if (tick > now) return tick;
  }
  return kInfiniteTime;
}

void Injector::on_tick(system::Module& module, Ticks now) {
  while (cursor_ < module_events_.size()) {
    const std::size_t index = module_events_[cursor_];
    const Injection& injection = plan_.injections[index];
    if (injection.tick > now) break;
    ++cursor_;
    InjectionRecord record;
    record.index = index;
    record.tick = now;
    record.fault = injection.fault;
    record.target = injection.target;
    apply(module, now, injection, record);
    // Marker in the module trace: byte-identity checks across execution
    // drivers then cover the injection instants themselves.
    module.trace().record(now, EventKind::kUser, injection.target,
                          static_cast<std::int64_t>(injection.fault),
                          static_cast<std::int64_t>(index),
                          std::string{"fi "} + to_string(injection.fault));
    log_.push_back(std::move(record));
  }
}

void Injector::apply(system::Module& module, Ticks now,
                     const Injection& injection, InjectionRecord& record) {
  const PartitionId target{injection.target};
  switch (injection.fault) {
    case FaultClass::kMemoryBitFlip: {
      // A radiation-style single-event upset in the target's data section:
      // lands in physical memory directly, beneath the MMU.
      const pmk::PartitionSpace* space = module.spatial().space(target);
      if (space == nullptr) {
        record.note = "no such partition";
        return;
      }
      const auto bytes =
          static_cast<std::uint64_t>(space->config.app_data_bytes);
      const auto addr =
          space->app_data +
          static_cast<hal::PhysAddr>(static_cast<std::uint64_t>(injection.a) %
                                     (bytes == 0 ? 1 : bytes));
      const std::uint8_t old = module.machine().memory().read_u8(addr);
      module.machine().memory().write_u8(
          addr, old ^ static_cast<std::uint8_t>(1u << (injection.b & 7)));
      record.applied = true;
      record.note = "flipped one app-data bit";
      return;
    }
    case FaultClass::kRogueWrite: {
      // Application-level write from the target partition's context to an
      // address it must not reach (default: the PMK region). Goes through
      // the simulated MMU: containment means the write faults and the HM is
      // told; the memory staying untouched is checked by the spatial oracle.
      const pmk::PartitionSpace* space = module.spatial().space(target);
      if (space == nullptr) {
        record.note = "no such partition";
        return;
      }
      hal::Machine& machine = module.machine();
      const hal::MmuContextId prev = machine.mmu().active_context();
      if (prev < 0) {
        record.note = "module not booted";
        return;
      }
      machine.mmu().set_active_context(space->context);
      const hal::VirtAddr vaddr =
          injection.a != 0 ? static_cast<hal::VirtAddr>(injection.a)
                           : pmk::kPmkBase;
      const std::uint32_t word = 0xFAu;
      const hal::TranslateResult result = machine.checked_write(
          vaddr, std::as_bytes(std::span{&word, 1}),
          hal::ExecLevel::kApplication);
      machine.mmu().set_active_context(prev);
      record.applied = true;
      if (!result.ok()) {
        // Same escalation path as the executor's OpMemoryAccess fault.
        module.trace().record(now, EventKind::kSpatialViolation,
                              injection.target, 0,
                              static_cast<std::int64_t>(vaddr));
        module.metrics().add(telemetry::Metric::kSpatialViolations,
                             injection.target);
        module.health().report(now, hm::ErrorCode::kMemoryViolation,
                               hm::ErrorLevel::kProcess, target, ProcessId{0},
                               "fi: rogue cross-partition write");
        record.note = "blocked by the MMU";
      } else {
        record.note = "write reached memory";  // a containment hole
      }
      return;
    }
    case FaultClass::kClockTickDuplicate: {
      // The hardware clock runs ahead (duplicated timer periods). The PAL
      // surrogate announce derives partition time from the dispatcher, not
      // from this counter, so temporal containment predicts no effect.
      module.machine().clock().advance(
          std::max<Ticks>(1, static_cast<Ticks>(injection.a)));
      record.applied = true;
      record.note = "hardware clock ran ahead";
      return;
    }
    case FaultClass::kSpuriousInterrupt: {
      // A bus interrupt with no transfer behind it; the HM sees a
      // module-level hardware fault (routed per the module HM table).
      module.machine().interrupts().raise(hal::IrqLine::kBus);
      module.health().report(now, hm::ErrorCode::kHardwareFault,
                             hm::ErrorLevel::kModule, PartitionId::invalid(),
                             ProcessId::invalid(),
                             "fi: spurious bus interrupt");
      record.applied = true;
      record.note = "raised bus irq";
      return;
    }
    case FaultClass::kProcessOverrun: {
      // Force an already-expired deadline on one process: the PAL surrogate
      // announce (Algorithm 3) must detect it at the partition's next
      // dispatch and report kDeadlineMissed.
      if (target.value() < 0 ||
          static_cast<std::size_t>(target.value()) >=
              module.partition_count()) {
        record.note = "no such partition";
        return;
      }
      const std::size_t count = module.kernel(target).process_count();
      if (count == 0) {
        record.note = "partition has no processes";
        return;
      }
      const ProcessId pid{static_cast<std::int32_t>(
          static_cast<std::uint64_t>(injection.a) % count)};
      module.pal(target).register_deadline(pid, now);
      record.applied = true;
      record.note = "deadline forced to now";
      return;
    }
    case FaultClass::kProcessStuck: {
      // Start the dormant CPU hog: it consumes every remaining tick of the
      // partition's windows. Temporal containment = other partitions keep
      // their windows untouched.
      record.applied =
          module.start_process_by_name(target, Injector::kHogProcessName);
      record.note = record.applied ? "hog process started"
                                   : "no hog process configured";
      return;
    }
    case FaultClass::kApplicationError: {
      if (target.value() < 0 ||
          static_cast<std::size_t>(target.value()) >=
              module.partition_count()) {
        record.note = "no such partition";
        return;
      }
      const std::size_t count = module.kernel(target).process_count();
      const ProcessId pid{static_cast<std::int32_t>(
          count == 0 ? 0
                     : static_cast<std::uint64_t>(injection.a) % count)};
      module.health().report(now, hm::ErrorCode::kApplicationError,
                             hm::ErrorLevel::kProcess, target, pid,
                             "fi: injected application error");
      record.applied = true;
      record.note = "reported application error";
      return;
    }
    case FaultClass::kScheduleStorm: {
      // A schedule-switch request outside any planned mode change; takes
      // effect at the next MTF boundary (Sect. 4.2), never mid-frame.
      const ScheduleId schedule{static_cast<std::int32_t>(injection.a)};
      record.applied = module.scheduler(0).request_schedule(schedule);
      record.note = record.applied ? "schedule switch requested"
                                   : "unknown schedule id";
      return;
    }
    case FaultClass::kBusFrameDrop:
    case FaultClass::kBusFrameCorrupt:
    case FaultClass::kBusFrameDelay:
      record.note = "bus fault (handled by BusInjector)";
      return;
  }
}

BusInjector::BusInjector(const FaultPlan& plan) {
  for (const Injection& in : plan.injections) {
    if (!is_bus_fault(in.fault)) continue;
    net::Bus::FaultDecision& decision =
        decisions_[static_cast<std::uint64_t>(in.a)];
    switch (in.fault) {
      case FaultClass::kBusFrameDrop: decision.drop = true; break;
      case FaultClass::kBusFrameCorrupt: decision.corrupt = true; break;
      case FaultClass::kBusFrameDelay:
        decision.extra_delay =
            std::max<Ticks>(decision.extra_delay,
                            std::max<Ticks>(1, static_cast<Ticks>(in.b)));
        break;
      default: break;
    }
  }
}

void BusInjector::arm(net::Bus& bus) {
  bus.set_fault_hook([this](std::uint64_t seq, ModuleId,
                            const ipc::RemotePortRef&) {
    return decide(seq);
  });
}

net::Bus::FaultDecision BusInjector::decide(std::uint64_t seq) const {
  const auto it = decisions_.find(seq);
  return it != decisions_.end() ? it->second : net::Bus::FaultDecision{};
}

}  // namespace air::fi
