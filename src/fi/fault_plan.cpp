#include "fi/fault_plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/rng.hpp"

namespace air::fi {

const char* to_string(FaultClass fault) {
  switch (fault) {
    case FaultClass::kMemoryBitFlip: return "memory_bit_flip";
    case FaultClass::kRogueWrite: return "rogue_write";
    case FaultClass::kClockTickDuplicate: return "clock_tick_duplicate";
    case FaultClass::kSpuriousInterrupt: return "spurious_interrupt";
    case FaultClass::kProcessOverrun: return "process_overrun";
    case FaultClass::kProcessStuck: return "process_stuck";
    case FaultClass::kApplicationError: return "application_error";
    case FaultClass::kScheduleStorm: return "schedule_storm";
    case FaultClass::kBusFrameDrop: return "bus_frame_drop";
    case FaultClass::kBusFrameCorrupt: return "bus_frame_corrupt";
    case FaultClass::kBusFrameDelay: return "bus_frame_delay";
  }
  return "unknown";
}

bool fault_class_from_string(std::string_view text, FaultClass& out) {
  for (std::size_t i = 0; i < kFaultClassCount; ++i) {
    const auto fault = static_cast<FaultClass>(i);
    if (text == to_string(fault)) {
      out = fault;
      return true;
    }
  }
  return false;
}

bool is_bus_fault(FaultClass fault) {
  return fault == FaultClass::kBusFrameDrop ||
         fault == FaultClass::kBusFrameCorrupt ||
         fault == FaultClass::kBusFrameDelay;
}

void FaultPlan::sort() {
  std::stable_sort(injections.begin(), injections.end(),
                   [](const Injection& lhs, const Injection& rhs) {
                     return lhs.tick < rhs.tick;
                   });
}

bool FaultPlan::has_class(FaultClass fault) const {
  return std::any_of(injections.begin(), injections.end(),
                     [fault](const Injection& in) { return in.fault == fault; });
}

std::string FaultPlan::to_text() const {
  std::ostringstream out;
  out << "# air fault plan v1\n";
  out << "seed " << seed << "\n";
  for (const Injection& in : injections) {
    out << "inject " << in.tick << " " << to_string(in.fault) << " "
        << in.target << " " << in.a << " " << in.b << "\n";
  }
  return out.str();
}

bool FaultPlan::from_text(const std::string& text, FaultPlan& out) {
  FaultPlan plan;
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line) || line != "# air fault plan v1") {
    return false;
  }
  while (std::getline(stream, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "seed") {
      if (!(fields >> plan.seed)) return false;
    } else if (keyword == "inject") {
      Injection in;
      std::string fault_name;
      if (!(fields >> in.tick >> fault_name >> in.target >> in.a >> in.b)) {
        return false;
      }
      if (!fault_class_from_string(fault_name, in.fault)) return false;
      plan.injections.push_back(in);
    } else {
      return false;
    }
  }
  plan.sort();
  out = std::move(plan);
  return true;
}

FaultPlan generate_plan(const PlanSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  if (spec.classes.empty() || spec.max_injections == 0) return plan;

  const std::size_t count =
      static_cast<std::size_t>(rng.uniform(
          1, static_cast<std::int64_t>(spec.max_injections)));
  Ticks tick = spec.first_tick + rng.uniform(0, spec.min_gap);
  for (std::size_t i = 0; i < count && tick <= spec.horizon; ++i) {
    Injection in;
    in.tick = tick;
    in.fault = spec.classes[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(spec.classes.size()) - 1))];
    in.target = static_cast<std::int32_t>(
        rng.uniform(0, std::max(0, spec.partitions - 1)));
    switch (in.fault) {
      case FaultClass::kMemoryBitFlip:
        in.a = rng.uniform(0, 4095);
        in.b = rng.uniform(0, 7);
        break;
      case FaultClass::kRogueWrite:
        in.a = 0;  // the PMK region base -- the worst allowed target
        break;
      case FaultClass::kClockTickDuplicate:
        in.a = rng.uniform(1, 3);
        in.target = -1;
        break;
      case FaultClass::kSpuriousInterrupt:
        in.target = -1;
        break;
      case FaultClass::kProcessOverrun:
      case FaultClass::kApplicationError:
        in.a = rng.uniform(0, 7);  // process index, folded at apply time
        break;
      case FaultClass::kProcessStuck:
        break;
      case FaultClass::kScheduleStorm:
        in.a = rng.uniform(0, 1);  // schedule id
        in.target = -1;
        break;
      case FaultClass::kBusFrameDrop:
      case FaultClass::kBusFrameCorrupt:
      case FaultClass::kBusFrameDelay:
        in.a = rng.uniform(
            0, static_cast<std::int64_t>(spec.bus_seq_window) - 1);
        in.b = rng.uniform(1, std::max<Ticks>(1, spec.max_bus_delay));
        in.target = -1;
        break;
    }
    plan.injections.push_back(in);
    tick += spec.min_gap + rng.uniform(0, spec.min_gap);
  }
  plan.sort();
  return plan;
}

}  // namespace air::fi
