// Fault-injection campaign runner.
//
// Sweeps N seeds, each seed a deterministic FaultPlan flown against the
// Fig. 8 prototype (one-module missions, and -- for every third seed --
// a two-module fig8+ground World mission whose science channel crosses the
// TDMA bus). Every mission is flown twice, clean and faulted, and the
// containment oracles (src/fi/oracles) compare the runs. A breached seed is
// shrunk to a minimal reproducer plan by greedy injection-subset removal
// and reported with the root-cause material (span anomalies, HM log).
//
// `weaken_hm` deliberately removes the partition error handlers and the
// module-table entry for hardware faults: the campaign must then flag the
// configuration, which is the self-test demanded by the acceptance
// criteria (and a template for probing real configuration changes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fi/fault_plan.hpp"
#include "fi/injector.hpp"
#include "fi/oracles.hpp"
#include "system/module_config.hpp"

namespace air::fi {

struct CampaignOptions {
  std::uint64_t first_seed{1};
  std::size_t seeds{25};
  Ticks mtfs{4};            // mission length, in Fig. 8 major time frames
  bool weaken_hm{false};    // fly the deliberately weakened configuration
  bool world_missions{true};  // include two-module bus missions
  std::size_t workers{1};     // World worker lanes for world missions
  std::string out_dir;        // write reproducers here ("" = don't)
  bool verbose{false};
};

/// Everything a failing seed leaves behind.
struct SeedResult {
  std::uint64_t seed{0};
  bool world_mission{false};
  FaultPlan plan;
  std::vector<Breach> breaches;  // of the full plan
  FaultPlan minimized;           // smallest still-breaching subset
  std::string report;            // human-readable: breaches + root causes
};

struct CampaignResult {
  std::size_t seeds_run{0};
  std::size_t injections_applied{0};
  std::vector<SeedResult> failures;

  [[nodiscard]] bool breached() const { return !failures.empty(); }
};

/// The campaign's module-0 configuration: Fig. 8 without the built-in
/// faulty process, plus per partition a dormant CPU-hog process (the
/// kProcessStuck vehicle), an application error handler, and explicit HM
/// entries for the injected error codes. `weaken_hm` removes the handlers
/// and the module-level hardware-fault entry.
[[nodiscard]] system::ModuleConfig campaign_fig8_config(bool weaken_hm);

/// The ground-segment module of world missions (science-frame archiver).
[[nodiscard]] system::ModuleConfig campaign_ground_config();

/// Whether `seed` flies the two-module World mission.
[[nodiscard]] bool is_world_seed(const CampaignOptions& options,
                                 std::uint64_t seed);

/// The deterministic plan of one seed (weakened campaigns guarantee at
/// least one HM-sensitive injection so the missing handler is exercised).
[[nodiscard]] FaultPlan campaign_plan(const CampaignOptions& options,
                                      std::uint64_t seed);

/// Fly `plan` against the mission (clean reference + faulted run) and
/// return every containment breach. `records_out` (optional) receives the
/// injection log of the faulted run.
[[nodiscard]] std::vector<Breach> evaluate_plan(
    const CampaignOptions& options, const FaultPlan& plan, bool world_mission,
    std::vector<InjectionRecord>* records_out = nullptr,
    std::string* detail_out = nullptr);

/// Greedy one-at-a-time shrink: drop any injection whose removal keeps the
/// plan breaching, to a fixed point.
[[nodiscard]] FaultPlan minimize_plan(const CampaignOptions& options,
                                      const FaultPlan& plan,
                                      bool world_mission);

[[nodiscard]] SeedResult run_seed(const CampaignOptions& options,
                                  std::uint64_t seed);

[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options);

/// End-to-end self-test of the online watchdog path: a clean Fig. 8 flight
/// must raise zero health events, and a single forced deadline miss
/// (kProcessOverrun) must light the deadline watchdog on exactly the target
/// partition, causally linked (HealthEvent::cause != 0) to the root-cause
/// chain of the miss. Returns the failures; empty = the detectors detect.
[[nodiscard]] std::vector<Breach> watchdog_selftest();

}  // namespace air::fi
