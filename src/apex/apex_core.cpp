// APEX core: construction, partition management, process management, time
// management, and the mode-based schedule services.
#include "apex/apex.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace air::apex {

Apex::Apex(PartitionId partition, pmk::PartitionControlBlock& pcb,
           pal::Pal& pal, ipc::Router& router, hm::HealthMonitor& health,
           pmk::PartitionScheduler& scheduler, std::function<Ticks()> now_fn)
    : partition_(partition),
      pcb_(pcb),
      pal_(pal),
      router_(router),
      health_(health),
      scheduler_(scheduler),
      now_fn_(std::move(now_fn)) {
  AIR_ASSERT(now_fn_ != nullptr);
}

pos::ProcessControlBlock* Apex::current_pcb() {
  return pal_.kernel().pcb(pal_.kernel().current());
}

// ---------- partition management ----------

PartitionStatus Apex::get_partition_status() const {
  return {partition_, pcb_.mode, pcb_.system_partition};
}

ReturnCode Apex::set_partition_mode(pmk::OperatingMode mode) {
  if (mode == pcb_.mode) return ReturnCode::kNoAction;
  switch (mode) {
    case pmk::OperatingMode::kNormal:
      if (pcb_.mode == pmk::OperatingMode::kIdle) {
        return ReturnCode::kInvalidMode;  // idle partitions restart, not resume
      }
      enter_normal_mode();
      return ReturnCode::kNoError;
    case pmk::OperatingMode::kIdle:
      pcb_.mode = pmk::OperatingMode::kIdle;
      pal_.reset();
      if (on_mode_transition) on_mode_transition(mode);
      return ReturnCode::kNoError;
    case pmk::OperatingMode::kColdStart:
    case pmk::OperatingMode::kWarmStart:
      pcb_.mode = mode;
      if (on_mode_transition) on_mode_transition(mode);
      return ReturnCode::kNoError;
  }
  return ReturnCode::kInvalidParam;
}

void Apex::enter_normal_mode() {
  pcb_.mode = pmk::OperatingMode::kNormal;
  for (ProcessId pid : pending_starts_) start_now(pid);
  pending_starts_.clear();
}

void Apex::reset_runtime_state() {
  buffers_.clear();
  blackboards_.clear();
  semaphores_.clear();
  events_.clear();
  for (auto& q : queuing_ports_) {
    q.senders.waiters.clear();
    q.receivers.waiters.clear();
    q.port->clear();
  }
  for (auto& s : sampling_ports_) s.port->clear();
  pending_starts_.clear();
  pending_errors_.clear();
  error_handler_ = ProcessId::invalid();
}

// ---------- process management ----------

ReturnCode Apex::create_process(const pos::ProcessAttributes& attrs,
                                ProcessId& out) {
  if (!in_init_mode()) return ReturnCode::kInvalidMode;
  if (attrs.priority < 0 || attrs.priority >= 256) {
    return ReturnCode::kInvalidParam;
  }
  if (attrs.sporadic && attrs.period == kInfiniteTime) {
    return ReturnCode::kInvalidParam;  // sporadic needs an inter-arrival bound
  }
  if (pal_.kernel().find_process(attrs.name).valid()) {
    return ReturnCode::kNoAction;  // duplicate name
  }
  out = pal_.kernel().create_process(attrs);
  return ReturnCode::kNoError;
}

void Apex::start_now(ProcessId pid) {
  pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  AIR_ASSERT(p != nullptr);
  const Ticks now = now_fn_();
  p->pc = 0;
  p->op_progress = 0;
  p->op_blocked = false;
  ++p->start_epoch;
  p->wake_result = pos::WakeResult::kNone;
  p->inbox.clear();
  p->current_priority = p->attrs.priority;
  p->wait_deadline = kInfiniteTime;
  p->release_pending = false;
  p->sporadic_active = false;
  if (p->attrs.sporadic) {
    // The first activation is unconstrained by the inter-arrival bound and
    // carries no deadline until it is released.
    p->next_release = now - p->attrs.period;
    p->absolute_deadline = kInfiniteTime;
  } else {
    p->next_release = now;
    if (p->attrs.time_capacity != kInfiniteTime) {
      // Fig. 6: START sets the deadline to now + time capacity and
      // registers it through the PAL private interface.
      p->absolute_deadline = now + p->attrs.time_capacity;
      pal_.register_deadline(pid, p->absolute_deadline);
    } else {
      p->absolute_deadline = kInfiniteTime;
    }
  }
  pal_.kernel().make_ready(pid);
}

ReturnCode Apex::start(ProcessId pid) {
  pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  if (p == nullptr) return ReturnCode::kInvalidParam;
  if (p->state != pos::ProcessState::kDormant) return ReturnCode::kNoAction;
  if (in_init_mode()) {
    // Processes started during initialisation become ready when the
    // partition enters NORMAL mode.
    pending_starts_.push_back(pid);
    return ReturnCode::kNoError;
  }
  if (pcb_.mode != pmk::OperatingMode::kNormal) {
    return ReturnCode::kInvalidMode;
  }
  start_now(pid);
  return ReturnCode::kNoError;
}

ReturnCode Apex::delayed_start(ProcessId pid, Ticks delay) {
  if (delay < 0) return ReturnCode::kInvalidParam;
  if (delay == 0) return start(pid);
  pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  if (p == nullptr) return ReturnCode::kInvalidParam;
  if (p->state != pos::ProcessState::kDormant) return ReturnCode::kNoAction;
  if (in_init_mode()) {
    pending_starts_.push_back(pid);  // delay consumed by initialisation
    return ReturnCode::kNoError;
  }
  if (pcb_.mode != pmk::OperatingMode::kNormal) {
    return ReturnCode::kInvalidMode;
  }
  const Ticks now = now_fn_();
  p->pc = 0;
  p->op_progress = 0;
  p->current_priority = p->attrs.priority;
  p->next_release = now + delay;
  if (p->attrs.time_capacity != kInfiniteTime) {
    p->absolute_deadline = now + delay + p->attrs.time_capacity;
    pal_.register_deadline(pid, p->absolute_deadline);
  }
  pal_.kernel().make_ready(pid);
  pal_.kernel().block(pid, pos::WaitReason::kDelayedStart, now + delay);
  return ReturnCode::kNoError;
}

ReturnCode Apex::stop(ProcessId pid) {
  pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  if (p == nullptr) return ReturnCode::kInvalidParam;
  if (p->state == pos::ProcessState::kDormant) return ReturnCode::kNoAction;
  purge_from_all_queues(pid);
  pal_.unregister_deadline(pid);
  pal_.kernel().make_dormant(pid);
  return ReturnCode::kNoError;
}

ReturnCode Apex::stop_self() {
  const ProcessId self = pal_.kernel().current();
  if (!self.valid()) return ReturnCode::kInvalidMode;
  return stop(self);
}

ServiceResult Apex::suspend_self(Ticks timeout, bool resumed) {
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (self->attrs.periodic()) {
    return ServiceResult::error(ReturnCode::kInvalidMode);
  }
  if (resumed) {
    const auto result = self->wake_result;
    self->wake_result = pos::WakeResult::kNone;
    return ServiceResult::error(result == pos::WakeResult::kTimeout
                                    ? ReturnCode::kTimedOut
                                    : ReturnCode::kNoError);
  }
  const Ticks wake =
      timeout == kInfiniteTime ? kInfiniteTime : now_fn_() + timeout;
  pal_.kernel().suspend(self->id, wake);
  return ServiceResult::block();
}

ReturnCode Apex::suspend(ProcessId pid) {
  pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  if (p == nullptr) return ReturnCode::kInvalidParam;
  if (p->state == pos::ProcessState::kDormant) return ReturnCode::kInvalidMode;
  if (p->attrs.periodic()) return ReturnCode::kInvalidMode;
  if (p->suspended) return ReturnCode::kNoAction;
  pal_.kernel().suspend(pid, kInfiniteTime);
  return ReturnCode::kNoError;
}

ReturnCode Apex::resume(ProcessId pid) {
  pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  if (p == nullptr) return ReturnCode::kInvalidParam;
  if (p->state == pos::ProcessState::kDormant) return ReturnCode::kInvalidMode;
  if (!p->suspended) return ReturnCode::kNoAction;
  pal_.kernel().resume(pid);
  return ReturnCode::kNoError;
}

ReturnCode Apex::set_priority(ProcessId pid, Priority priority) {
  pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  if (p == nullptr) return ReturnCode::kInvalidParam;
  if (priority < 0 || priority >= 256) return ReturnCode::kInvalidParam;
  if (p->state == pos::ProcessState::kDormant) return ReturnCode::kInvalidMode;
  pal_.kernel().set_priority(pid, priority);
  return ReturnCode::kNoError;
}

ProcessId Apex::get_my_id() const { return pal_.kernel().current(); }

ReturnCode Apex::get_process_id(std::string_view name, ProcessId& out) const {
  out = pal_.kernel().find_process(name);
  return out.valid() ? ReturnCode::kNoError : ReturnCode::kInvalidConfig;
}

ReturnCode Apex::get_process_status(ProcessId pid, ProcessStatus& out) const {
  const pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  if (p == nullptr) return ReturnCode::kInvalidParam;
  out.id = p->id;
  out.name = p->attrs.name;
  out.period = p->attrs.period;
  out.time_capacity = p->attrs.time_capacity;
  out.base_priority = p->attrs.priority;
  out.current_priority = p->current_priority;
  out.deadline_time = p->absolute_deadline;
  out.state = p->state;
  out.completions = p->completions;
  out.max_response = p->max_response;
  out.mean_response =
      p->completions > 0
          ? static_cast<double>(p->total_response) /
                static_cast<double>(p->completions)
          : 0.0;
  out.deadline_misses = p->deadline_misses;
  return ReturnCode::kNoError;
}

ReturnCode Apex::lock_preemption() {
  if (pcb_.mode != pmk::OperatingMode::kNormal) return ReturnCode::kNoAction;
  pal_.kernel().lock_preemption();
  return ReturnCode::kNoError;
}

ReturnCode Apex::unlock_preemption() {
  if (!pal_.kernel().preemption_locked()) return ReturnCode::kNoAction;
  pal_.kernel().unlock_preemption();
  return ReturnCode::kNoError;
}

// ---------- time management ----------

ServiceResult Apex::timed_wait(Ticks delay) {
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (delay < 0) return ServiceResult::error(ReturnCode::kInvalidParam);
  if (self->wake_result != pos::WakeResult::kNone) {
    self->wake_result = pos::WakeResult::kNone;  // resumed after the wait
    return ServiceResult::ok();
  }
  // delay == 0 is a yield: wake at the next tick announcement.
  pal_.kernel().block(self->id, pos::WaitReason::kDelay, now_fn_() + delay);
  return ServiceResult::block();
}

ServiceResult Apex::periodic_wait() {
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (!self->attrs.periodic()) {
    return ServiceResult::error(ReturnCode::kInvalidMode);
  }
  if (self->wake_result != pos::WakeResult::kNone) {
    self->wake_result = pos::WakeResult::kNone;  // released
    return ServiceResult::ok();
  }
  const Ticks now = now_fn_();

  // Activation completed: record its response time (diagnostics).
  const Ticks response = now - self->next_release;
  ++self->completions;
  self->total_response += response;
  self->max_response = std::max(self->max_response, response);

  const Ticks next = self->next_release + self->attrs.period;
  self->next_release = next;
  // Fig. 6: PERIODIC_WAIT is one of the services that "insert or update the
  // due processes' deadlines" -- the deadline of the *next* activation is
  // registered here (the current activation completed; its entry is
  // replaced, so no stale deadline can fire while the process waits).
  if (self->attrs.time_capacity != kInfiniteTime) {
    self->absolute_deadline = next + self->attrs.time_capacity;
    pal_.register_deadline(self->id, self->absolute_deadline);
  }
  if (next <= now) {
    // Release point already passed (the process overran its period): the
    // release is immediate; the deadline still counts from the nominal
    // release point, keeping overruns observable.
    return ServiceResult::ok();
  }
  pal_.kernel().block(self->id, pos::WaitReason::kNextRelease, next);
  return ServiceResult::block();
}

// ---------- sporadic activation ----------

ServiceResult Apex::sporadic_wait() {
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (!self->attrs.sporadic) {
    return ServiceResult::error(ReturnCode::kInvalidMode);
  }
  if (self->wake_result != pos::WakeResult::kNone) {
    self->wake_result = pos::WakeResult::kNone;  // activated
    return ServiceResult::ok();
  }
  const Ticks now = now_fn_();

  // The previous activation (if any) completed: record its response time
  // and retire its deadline.
  if (self->sporadic_active) {
    self->sporadic_active = false;
    const Ticks response = now - self->next_release;
    ++self->completions;
    self->total_response += response;
    self->max_response = std::max(self->max_response, response);
    pal_.unregister_deadline(self->id);
  }

  // Earliest legal next activation (minimum inter-arrival enforcement).
  const Ticks earliest = self->next_release + self->attrs.period;
  if (self->release_pending) {
    self->release_pending = false;
    const Ticks release_at = std::max(now, earliest);
    self->next_release = release_at;
    self->sporadic_active = true;
    if (self->attrs.time_capacity != kInfiniteTime) {
      self->absolute_deadline = release_at + self->attrs.time_capacity;
      pal_.register_deadline(self->id, self->absolute_deadline);
    }
    if (release_at <= now) return ServiceResult::ok();
    pal_.kernel().block(self->id, pos::WaitReason::kNextRelease, release_at);
    return ServiceResult::block();
  }
  // No buffered release: wait for one (indefinitely).
  pal_.kernel().block(self->id, pos::WaitReason::kSporadic, kInfiniteTime);
  return ServiceResult::block();
}

ReturnCode Apex::release_process(ProcessId pid) {
  pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
  if (p == nullptr) return ReturnCode::kInvalidParam;
  if (!p->attrs.sporadic || p->state == pos::ProcessState::kDormant) {
    return ReturnCode::kInvalidMode;
  }
  if (p->state == pos::ProcessState::kWaiting &&
      p->wait_reason == pos::WaitReason::kSporadic) {
    const Ticks now = now_fn_();
    const Ticks earliest = p->next_release + p->attrs.period;
    const Ticks release_at = std::max(now, earliest);
    p->next_release = release_at;
    p->sporadic_active = true;
    if (p->attrs.time_capacity != kInfiniteTime) {
      p->absolute_deadline = release_at + p->attrs.time_capacity;
      pal_.register_deadline(pid, p->absolute_deadline);
    }
    if (release_at <= now) {
      pal_.kernel().wake(pid, pos::WakeResult::kOk);
    } else {
      // Defer to the inter-arrival bound: turn the wait into a timed one
      // (via the kernel, which keeps its timer columns in sync).
      pal_.kernel().retarget_wait(pid, pos::WaitReason::kNextRelease,
                                  release_at);
    }
    return ReturnCode::kNoError;
  }
  // Target is busy with the previous activation: buffer one release.
  if (p->release_pending) {
    ++p->lost_releases;  // event overload: the inter-arrival bound sheds it
    return ReturnCode::kNoAction;
  }
  p->release_pending = true;
  return ReturnCode::kNoError;
}

ReturnCode Apex::replenish(Ticks budget) {
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ReturnCode::kInvalidMode;
  if (budget < 0) return ReturnCode::kInvalidParam;
  if (self->attrs.time_capacity == kInfiniteTime) {
    return ReturnCode::kNoAction;  // no deadline to postpone
  }
  // Fig. 6: REPLENISH computes the new deadline (now + budget) and updates
  // the PAL registry, re-sorting the entry as needed.
  self->absolute_deadline = now_fn_() + budget;
  pal_.register_deadline(self->id, self->absolute_deadline);
  return ReturnCode::kNoError;
}

// ---------- mode-based schedules ----------

ReturnCode Apex::set_module_schedule(ScheduleId schedule) {
  if (!pcb_.system_partition) {
    // Only authorised (system) partitions may switch schedules (Sect. 4.2).
    return ReturnCode::kInvalidConfig;
  }
  const ScheduleId previous = scheduler_.status().current;
  if (!scheduler_.request_schedule(schedule)) {
    return ReturnCode::kInvalidParam;
  }
  if (spans_ != nullptr) {
    // Open a switch span from the request to the MTF-boundary activation
    // (the module closes it when the switch takes effect), parented on the
    // requesting process's job so chains can answer "who asked for this".
    const telemetry::SpanId stale = spans_->take_pending_schedule_switch();
    if (stale != 0) {
      spans_->end(stale, now_fn_(), telemetry::SpanStatus::kAborted);
    }
    spans_->set_pending_schedule_switch(spans_->begin(
        telemetry::SpanKind::kScheduleSwitch, now_fn_(),
        pal_.job_span(pal_.kernel().current()), 0, schedule.value(),
        previous.value()));
  }
  return ReturnCode::kNoError;
}

ModuleScheduleStatus Apex::get_module_schedule_status() const {
  const pmk::ScheduleStatus status = scheduler_.status();
  return {status.last_switch_time, status.current, status.next};
}

}  // namespace air::apex
