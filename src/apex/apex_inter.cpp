// APEX interpartition communication services (sampling and queuing ports)
// and the health-monitoring services.
#include "apex/apex.hpp"

#include "util/assert.hpp"

namespace air::apex {

namespace {

bool consume_timeout(pos::ProcessControlBlock& self) {
  const bool timed_out = self.wake_result == pos::WakeResult::kTimeout;
  self.wake_result = pos::WakeResult::kNone;
  return timed_out;
}

}  // namespace

// ---------- port definition / binding ----------

PortId Apex::define_sampling_port(std::string name,
                                  ipc::PortDirection direction,
                                  std::size_t max_bytes,
                                  Ticks refresh_period) {
  auto port = std::make_unique<ipc::SamplingPort>(std::move(name), direction,
                                                  max_bytes, refresh_period);
  router_.add_sampling_port(partition_, port.get());
  sampling_ports_.push_back({std::move(port)});
  return PortId{static_cast<std::int32_t>(sampling_ports_.size() - 1)};
}

PortId Apex::define_queuing_port(std::string name,
                                 ipc::PortDirection direction,
                                 std::size_t max_bytes, std::size_t capacity,
                                 ipc::QueuingDiscipline discipline) {
  auto port = std::make_unique<ipc::QueuingPort>(std::move(name), direction,
                                                 max_bytes, capacity);
  router_.add_queuing_port(partition_, port.get());
  QueuingPortObject obj{std::move(port), {}, {}};
  obj.senders.discipline = discipline;
  obj.receivers.discipline = discipline;
  queuing_ports_.push_back(std::move(obj));
  return PortId{static_cast<std::int32_t>(queuing_ports_.size() - 1)};
}

ReturnCode Apex::create_sampling_port(std::string_view name,
                                      PortId& out) const {
  for (std::size_t i = 0; i < sampling_ports_.size(); ++i) {
    if (sampling_ports_[i].port->name() == name) {
      out = PortId{static_cast<std::int32_t>(i)};
      return ReturnCode::kNoError;
    }
  }
  return ReturnCode::kInvalidConfig;
}

ReturnCode Apex::create_queuing_port(std::string_view name,
                                     PortId& out) const {
  for (std::size_t i = 0; i < queuing_ports_.size(); ++i) {
    if (queuing_ports_[i].port->name() == name) {
      out = PortId{static_cast<std::int32_t>(i)};
      return ReturnCode::kNoError;
    }
  }
  return ReturnCode::kInvalidConfig;
}

// ---------- sampling services ----------

ReturnCode Apex::write_sampling_message(PortId id, std::string_view message) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= sampling_ports_.size()) {
    return ReturnCode::kInvalidParam;
  }
  ipc::SamplingPort& port =
      *sampling_ports_[static_cast<std::size_t>(id.value())].port;
  if (port.direction() != ipc::PortDirection::kSource) {
    return ReturnCode::kInvalidMode;
  }
  ipc::Message msg{ipc::Payload{message}, now_fn_(), partition_};
  if (msg.payload.size() > port.max_message_bytes()) {
    return ReturnCode::kInvalidParam;  // too large (port.write would refuse)
  }
  if (spans_ != nullptr) {
    // The send leg roots the message flow; the context rides in the message
    // through router hops and bus transit to the receive leg.
    const telemetry::SpanId send = spans_->instant(
        telemetry::SpanKind::kMsgSend, msg.sent_at,
        pal_.job_span(pal_.kernel().current()), 0, partition_.value(),
        id.value(), static_cast<std::int64_t>(msg.payload.size()));
    msg.ctx = {send, send};
  }
  if (!port.write(msg)) return ReturnCode::kInvalidParam;
  router_.propagate_sampling({partition_, port.name()}, msg);
  return ReturnCode::kNoError;
}

ReturnCode Apex::read_sampling_message(PortId id, std::string& out,
                                       bool& valid) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= sampling_ports_.size()) {
    return ReturnCode::kInvalidParam;
  }
  const ipc::SamplingPort& port =
      *sampling_ports_[static_cast<std::size_t>(id.value())].port;
  if (port.direction() != ipc::PortDirection::kDestination) {
    return ReturnCode::kInvalidMode;
  }
  const auto result = port.read(now_fn_());
  if (!result.message.has_value()) {
    valid = false;
    return ReturnCode::kNotAvailable;  // empty port
  }
  out = result.message->payload;
  valid = result.valid;
  if (spans_ != nullptr && result.message->ctx.trace_id != 0) {
    spans_->instant(telemetry::SpanKind::kMsgReceive, now_fn_(),
                    result.message->ctx.parent_span,
                    result.message->ctx.trace_id, partition_.value(),
                    id.value(), static_cast<std::int64_t>(out.size()));
  }
  if (pos::ProcessControlBlock* self = current_pcb()) self->inbox = out;
  return ReturnCode::kNoError;
}

// ---------- queuing services ----------

ServiceResult Apex::send_queuing_message(PortId id, std::string_view message,
                                         Ticks timeout, bool resumed) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= queuing_ports_.size()) {
    return ServiceResult::error(ReturnCode::kInvalidParam);
  }
  QueuingPortObject& obj =
      queuing_ports_[static_cast<std::size_t>(id.value())];
  if (obj.port->direction() != ipc::PortDirection::kSource) {
    return ServiceResult::error(ReturnCode::kInvalidMode);
  }
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (resumed && consume_timeout(*self)) {
    purge_waiter(obj.senders, self->id);
    return ServiceResult::error(ReturnCode::kTimedOut);
  }
  ipc::Message msg{ipc::Payload{message}, now_fn_(), partition_};
  if (spans_ != nullptr && !obj.port->full() &&
      msg.payload.size() <= obj.port->max_message_bytes()) {
    // Root the flow only for a message that will actually enqueue; refused
    // sends (full queue, oversized payload) leave no orphan span.
    const telemetry::SpanId send = spans_->instant(
        telemetry::SpanKind::kMsgSend, msg.sent_at,
        pal_.job_span(pal_.kernel().current()), 0, partition_.value(),
        id.value(), static_cast<std::int64_t>(msg.payload.size()));
    msg.ctx = {send, send};
  }
  switch (obj.port->send(std::move(msg))) {
    case ipc::QueuingPort::SendStatus::kOk:
      // Opportunistic channel transfer; the PMK also pumps every tick.
      router_.pump({partition_, obj.port->name()});
      return ServiceResult::ok();
    case ipc::QueuingPort::SendStatus::kTooLarge:
      return ServiceResult::error(ReturnCode::kInvalidParam);
    case ipc::QueuingPort::SendStatus::kFull:
      break;
  }
  if (timeout == 0) return ServiceResult::error(ReturnCode::kNotAvailable);
  const Ticks deadline = resolve_wait_deadline(*self, timeout, resumed);
  return block_current(*self, pos::WaitReason::kQueuingPort, deadline,
                       obj.senders);
}

ServiceResult Apex::receive_queuing_message(PortId id, Ticks timeout,
                                            std::string& out, bool resumed) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= queuing_ports_.size()) {
    return ServiceResult::error(ReturnCode::kInvalidParam);
  }
  QueuingPortObject& obj =
      queuing_ports_[static_cast<std::size_t>(id.value())];
  if (obj.port->direction() != ipc::PortDirection::kDestination) {
    return ServiceResult::error(ReturnCode::kInvalidMode);
  }
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (resumed && consume_timeout(*self)) {
    purge_waiter(obj.receivers, self->id);
    return ServiceResult::error(ReturnCode::kTimedOut);
  }
  if (auto message = obj.port->receive()) {
    out = message->payload;
    if (spans_ != nullptr && message->ctx.trace_id != 0) {
      spans_->instant(telemetry::SpanKind::kMsgReceive, now_fn_(),
                      message->ctx.parent_span, message->ctx.trace_id,
                      partition_.value(), id.value(),
                      static_cast<std::int64_t>(out.size()));
    }
    self->inbox = out;
    return ServiceResult::ok();
  }
  if (timeout == 0) return ServiceResult::error(ReturnCode::kNotAvailable);
  const Ticks deadline = resolve_wait_deadline(*self, timeout, resumed);
  return block_current(*self, pos::WaitReason::kQueuingPort, deadline,
                       obj.receivers);
}

void Apex::notify_queuing_delivery(std::string_view port_name) {
  for (auto& obj : queuing_ports_) {
    if (obj.port->name() == port_name) {
      wake_first(obj.receivers);
      return;
    }
  }
}

void Apex::notify_queuing_space(std::string_view port_name) {
  for (auto& obj : queuing_ports_) {
    if (obj.port->name() == port_name) {
      wake_first(obj.senders);
      return;
    }
  }
}

// ---------- health monitoring ----------

ReturnCode Apex::report_application_message(std::string message) {
  if (console) console(message);
  return ReturnCode::kNoError;
}

ReturnCode Apex::create_error_handler(pos::Script script,
                                      std::size_t stack_bytes) {
  if (!in_init_mode()) return ReturnCode::kInvalidMode;
  if (error_handler_.valid()) return ReturnCode::kNoAction;
  pos::ProcessAttributes attrs;
  attrs.name = "__error_handler";
  attrs.script = std::move(script);
  attrs.period = kInfiniteTime;        // aperiodic
  attrs.time_capacity = kInfiniteTime; // the handler itself has no deadline
  attrs.priority = 0;                  // above every application process
  attrs.stack_bytes = stack_bytes;
  error_handler_ = pal_.kernel().create_process(std::move(attrs));
  return ReturnCode::kNoError;
}

ReturnCode Apex::raise_application_error(std::int32_t code,
                                         std::string message) {
  const ProcessId self = pal_.kernel().current();
  health_.report(now_fn_(), hm::ErrorCode::kApplicationError,
                 hm::ErrorLevel::kProcess, partition_, self,
                 std::move(message) + " (code " + std::to_string(code) + ")");
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_error_status(ErrorStatus& out) {
  if (pending_errors_.empty()) return ReturnCode::kNoAction;
  out = pending_errors_.front();
  pending_errors_.pop_front();
  return ReturnCode::kNoError;
}

bool Apex::activate_error_handler(const hm::ErrorReport& report) {
  if (!error_handler_.valid()) return false;
  pos::ProcessControlBlock* handler = pal_.kernel().pcb(error_handler_);
  if (handler == nullptr) return false;
  pending_errors_.push_back({static_cast<std::int32_t>(report.code),
                             report.process, report.message, report.time});
  if (handler->state == pos::ProcessState::kDormant) {
    start_now(error_handler_);
  }
  return true;
}

}  // namespace air::apex
