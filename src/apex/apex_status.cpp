// APEX status and id-lookup services (ARINC 653 GET_*_ID / GET_*_STATUS).
#include "apex/apex.hpp"

namespace air::apex {

namespace {

template <class Vec, class NameOf>
std::int32_t find_by_name(const Vec& objects, std::string_view name,
                          NameOf name_of) {
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (name_of(objects[i]) == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

}  // namespace

ReturnCode Apex::get_buffer_id(std::string_view name, BufferId& out) const {
  const std::int32_t i = find_by_name(
      buffers_, name, [](const BufferObject& b) { return b.state.name(); });
  if (i < 0) return ReturnCode::kInvalidConfig;
  out = BufferId{i};
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_blackboard_id(std::string_view name,
                                   BlackboardId& out) const {
  const std::int32_t i = find_by_name(
      blackboards_, name,
      [](const BlackboardObject& b) { return b.state.name(); });
  if (i < 0) return ReturnCode::kInvalidConfig;
  out = BlackboardId{i};
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_semaphore_id(std::string_view name,
                                  SemaphoreId& out) const {
  const std::int32_t i = find_by_name(
      semaphores_, name,
      [](const SemaphoreObject& s) { return s.state.name(); });
  if (i < 0) return ReturnCode::kInvalidConfig;
  out = SemaphoreId{i};
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_event_id(std::string_view name, EventId& out) const {
  const std::int32_t i = find_by_name(
      events_, name, [](const EventObject& e) { return e.state.name(); });
  if (i < 0) return ReturnCode::kInvalidConfig;
  out = EventId{i};
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_buffer_status(BufferId id, BufferStatus& out) const {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= buffers_.size()) {
    return ReturnCode::kInvalidParam;
  }
  const BufferObject& buffer = buffers_[static_cast<std::size_t>(id.value())];
  out.nb_message = buffer.state.depth();
  out.max_nb_message = buffer.state.capacity();
  out.max_message_size = buffer.state.max_message_bytes();
  out.waiting_processes =
      buffer.senders.waiters.size() + buffer.receivers.waiters.size();
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_blackboard_status(BlackboardId id,
                                       BlackboardStatus& out) const {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= blackboards_.size()) {
    return ReturnCode::kInvalidParam;
  }
  const BlackboardObject& bb =
      blackboards_[static_cast<std::size_t>(id.value())];
  out.empty = !bb.state.displayed();
  out.max_message_size = bb.state.max_message_bytes();
  out.waiting_processes = bb.readers.waiters.size();
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_semaphore_status(SemaphoreId id,
                                      SemaphoreStatus& out) const {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= semaphores_.size()) {
    return ReturnCode::kInvalidParam;
  }
  const SemaphoreObject& sem =
      semaphores_[static_cast<std::size_t>(id.value())];
  out.current_value = sem.state.value();
  out.maximum_value = sem.state.maximum();
  out.waiting_processes = sem.waiters.waiters.size();
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_event_status(EventId id, EventStatus& out) const {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= events_.size()) {
    return ReturnCode::kInvalidParam;
  }
  const EventObject& event = events_[static_cast<std::size_t>(id.value())];
  out.up = event.state.up();
  out.waiting_processes = event.waiters.waiters.size();
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_sampling_port_status(PortId id,
                                          SamplingPortStatus& out) const {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= sampling_ports_.size()) {
    return ReturnCode::kInvalidParam;
  }
  const ipc::SamplingPort& port =
      *sampling_ports_[static_cast<std::size_t>(id.value())].port;
  out.max_message_size = port.max_message_bytes();
  out.refresh_period = port.refresh_period();
  out.has_message = port.has_message();
  out.last_valid = port.read(now_fn_()).valid;
  return ReturnCode::kNoError;
}

ReturnCode Apex::get_queuing_port_status(PortId id,
                                         QueuingPortStatus& out) const {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= queuing_ports_.size()) {
    return ReturnCode::kInvalidParam;
  }
  const QueuingPortObject& obj =
      queuing_ports_[static_cast<std::size_t>(id.value())];
  out.nb_message = obj.port->depth();
  out.max_nb_message = obj.port->capacity();
  out.max_message_size = obj.port->max_message_bytes();
  out.waiting_processes =
      obj.senders.waiters.size() + obj.receivers.waiters.size();
  out.overflows = obj.port->overflows();
  return ReturnCode::kNoError;
}

}  // namespace air::apex
