// APEX intrapartition communication: buffers, blackboards, semaphores,
// events, plus the shared wait-queue machinery used by every blocking
// service.
//
// Blocking model: a service that cannot complete enqueues the calling
// process on the object's wait queue and blocks it in the kernel with the
// absolute timeout deadline. A wake (resource available / timeout) makes the
// executor re-issue the call with resumed = true; the retried call either
// completes, reports TIMED_OUT, or re-blocks against the *original*
// deadline. FIFO queue discipline (ARINC 653 also allows priority order).
#include "apex/apex.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace air::apex {

// ---------- wait-queue machinery ----------

Ticks Apex::resolve_wait_deadline(pos::ProcessControlBlock& self,
                                  Ticks timeout, bool resumed) {
  if (resumed) return self.wait_deadline;
  const Ticks deadline =
      timeout == kInfiniteTime ? kInfiniteTime : now_fn_() + timeout;
  self.wait_deadline = deadline;
  return deadline;
}

ServiceResult Apex::block_current(pos::ProcessControlBlock& self,
                                  pos::WaitReason reason, Ticks deadline,
                                  WaitQueue& queue) {
  purge_waiter(queue, self.id);  // no duplicates across retries
  if (queue.discipline == ipc::QueuingDiscipline::kPriority) {
    // Insert before the first strictly-lower-priority waiter (higher
    // numeric value); stable among equals = FIFO within priority.
    auto it = queue.waiters.begin();
    for (; it != queue.waiters.end(); ++it) {
      const pos::ProcessControlBlock* other = pal_.kernel().pcb(*it);
      if (other != nullptr &&
          other->current_priority > self.current_priority) {
        break;
      }
    }
    queue.waiters.insert(it, self.id);
  } else {
    queue.waiters.push_back(self.id);
  }
  pal_.kernel().block(self.id, reason, deadline);
  return ServiceResult::block();
}

void Apex::purge_waiter(WaitQueue& queue, ProcessId pid) {
  auto& w = queue.waiters;
  w.erase(std::remove(w.begin(), w.end(), pid), w.end());
}

void Apex::purge_from_all_queues(ProcessId pid) {
  for (auto& b : buffers_) {
    purge_waiter(b.senders, pid);
    purge_waiter(b.receivers, pid);
  }
  for (auto& b : blackboards_) purge_waiter(b.readers, pid);
  for (auto& s : semaphores_) purge_waiter(s.waiters, pid);
  for (auto& e : events_) purge_waiter(e.waiters, pid);
  for (auto& q : queuing_ports_) {
    purge_waiter(q.senders, pid);
    purge_waiter(q.receivers, pid);
  }
}

void Apex::wake_first(WaitQueue& queue) {
  while (!queue.waiters.empty()) {
    const ProcessId pid = queue.waiters.front();
    queue.waiters.pop_front();
    pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
    if (p != nullptr && p->state == pos::ProcessState::kWaiting) {
      pal_.kernel().wake(pid, pos::WakeResult::kOk);
      return;
    }
    // Stale entry (process stopped meanwhile): drop and try the next.
  }
}

void Apex::wake_all(WaitQueue& queue) {
  while (!queue.waiters.empty()) {
    const ProcessId pid = queue.waiters.front();
    queue.waiters.pop_front();
    pos::ProcessControlBlock* p = pal_.kernel().pcb(pid);
    if (p != nullptr && p->state == pos::ProcessState::kWaiting) {
      pal_.kernel().wake(pid, pos::WakeResult::kOk);
    }
  }
}

namespace {

/// Shared epilogue for resumed blocking calls: consume the wake result;
/// true when the wait timed out.
bool consume_timeout(pos::ProcessControlBlock& self) {
  const bool timed_out = self.wake_result == pos::WakeResult::kTimeout;
  self.wake_result = pos::WakeResult::kNone;
  return timed_out;
}

}  // namespace

// ---------- buffers ----------

ReturnCode Apex::create_buffer(std::string name, std::size_t max_bytes,
                               std::size_t capacity, BufferId& out,
                               ipc::QueuingDiscipline discipline) {
  if (!in_init_mode()) return ReturnCode::kInvalidMode;
  if (capacity == 0 || max_bytes == 0) return ReturnCode::kInvalidParam;
  BufferObject buffer{ipc::BufferState{std::move(name), max_bytes, capacity},
                      {},
                      {}};
  buffer.senders.discipline = discipline;
  buffer.receivers.discipline = discipline;
  buffers_.push_back(std::move(buffer));
  out = BufferId{static_cast<std::int32_t>(buffers_.size() - 1)};
  return ReturnCode::kNoError;
}

ServiceResult Apex::send_buffer(BufferId id, std::string message,
                                Ticks timeout, bool resumed) {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= buffers_.size()) {
    return ServiceResult::error(ReturnCode::kInvalidParam);
  }
  BufferObject& buffer = buffers_[static_cast<std::size_t>(id.value())];
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (message.size() > buffer.state.max_message_bytes()) {
    return ServiceResult::error(ReturnCode::kInvalidParam);
  }
  if (resumed && consume_timeout(*self)) {
    purge_waiter(buffer.senders, self->id);
    return ServiceResult::error(ReturnCode::kTimedOut);
  }
  if (buffer.state.push(std::move(message))) {
    wake_first(buffer.receivers);
    return ServiceResult::ok();
  }
  if (timeout == 0) return ServiceResult::error(ReturnCode::kNotAvailable);
  const Ticks deadline = resolve_wait_deadline(*self, timeout, resumed);
  return block_current(*self, pos::WaitReason::kBuffer, deadline,
                       buffer.senders);
}

ServiceResult Apex::receive_buffer(BufferId id, Ticks timeout,
                                   std::string& out, bool resumed) {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= buffers_.size()) {
    return ServiceResult::error(ReturnCode::kInvalidParam);
  }
  BufferObject& buffer = buffers_[static_cast<std::size_t>(id.value())];
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (resumed && consume_timeout(*self)) {
    purge_waiter(buffer.receivers, self->id);
    return ServiceResult::error(ReturnCode::kTimedOut);
  }
  if (auto message = buffer.state.pop()) {
    out = std::move(*message);
    self->inbox = out;
    wake_first(buffer.senders);
    return ServiceResult::ok();
  }
  if (timeout == 0) return ServiceResult::error(ReturnCode::kNotAvailable);
  const Ticks deadline = resolve_wait_deadline(*self, timeout, resumed);
  return block_current(*self, pos::WaitReason::kBuffer, deadline,
                       buffer.receivers);
}

// ---------- blackboards ----------

ReturnCode Apex::create_blackboard(std::string name, std::size_t max_bytes,
                                   BlackboardId& out) {
  if (!in_init_mode()) return ReturnCode::kInvalidMode;
  if (max_bytes == 0) return ReturnCode::kInvalidParam;
  blackboards_.push_back(
      {ipc::BlackboardState{std::move(name), max_bytes}, {}});
  out = BlackboardId{static_cast<std::int32_t>(blackboards_.size() - 1)};
  return ReturnCode::kNoError;
}

ReturnCode Apex::display_blackboard(BlackboardId id, std::string message) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= blackboards_.size()) {
    return ReturnCode::kInvalidParam;
  }
  BlackboardObject& bb = blackboards_[static_cast<std::size_t>(id.value())];
  if (!bb.state.display(std::move(message))) {
    return ReturnCode::kInvalidParam;  // too large
  }
  wake_all(bb.readers);
  return ReturnCode::kNoError;
}

ReturnCode Apex::clear_blackboard(BlackboardId id) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= blackboards_.size()) {
    return ReturnCode::kInvalidParam;
  }
  blackboards_[static_cast<std::size_t>(id.value())].state.clear();
  return ReturnCode::kNoError;
}

ServiceResult Apex::read_blackboard(BlackboardId id, Ticks timeout,
                                    std::string& out, bool resumed) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= blackboards_.size()) {
    return ServiceResult::error(ReturnCode::kInvalidParam);
  }
  BlackboardObject& bb = blackboards_[static_cast<std::size_t>(id.value())];
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (resumed && consume_timeout(*self)) {
    purge_waiter(bb.readers, self->id);
    return ServiceResult::error(ReturnCode::kTimedOut);
  }
  if (bb.state.displayed()) {
    out = *bb.state.read();
    self->inbox = out;
    return ServiceResult::ok();
  }
  if (timeout == 0) return ServiceResult::error(ReturnCode::kNotAvailable);
  const Ticks deadline = resolve_wait_deadline(*self, timeout, resumed);
  return block_current(*self, pos::WaitReason::kBlackboard, deadline,
                       bb.readers);
}

// ---------- semaphores ----------

ReturnCode Apex::create_semaphore(std::string name, std::int32_t initial,
                                  std::int32_t maximum, SemaphoreId& out,
                                  ipc::QueuingDiscipline discipline) {
  if (!in_init_mode()) return ReturnCode::kInvalidMode;
  if (initial < 0 || maximum <= 0 || initial > maximum) {
    return ReturnCode::kInvalidParam;
  }
  SemaphoreObject sem{ipc::SemaphoreState{std::move(name), initial, maximum},
                      {}};
  sem.waiters.discipline = discipline;
  semaphores_.push_back(std::move(sem));
  out = SemaphoreId{static_cast<std::int32_t>(semaphores_.size() - 1)};
  return ReturnCode::kNoError;
}

ServiceResult Apex::wait_semaphore(SemaphoreId id, Ticks timeout,
                                   bool resumed) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= semaphores_.size()) {
    return ServiceResult::error(ReturnCode::kInvalidParam);
  }
  SemaphoreObject& sem = semaphores_[static_cast<std::size_t>(id.value())];
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (resumed && consume_timeout(*self)) {
    purge_waiter(sem.waiters, self->id);
    return ServiceResult::error(ReturnCode::kTimedOut);
  }
  if (sem.state.try_wait()) return ServiceResult::ok();
  if (timeout == 0) return ServiceResult::error(ReturnCode::kNotAvailable);
  const Ticks deadline = resolve_wait_deadline(*self, timeout, resumed);
  return block_current(*self, pos::WaitReason::kSemaphore, deadline,
                       sem.waiters);
}

ReturnCode Apex::signal_semaphore(SemaphoreId id) {
  if (!id.valid() ||
      static_cast<std::size_t>(id.value()) >= semaphores_.size()) {
    return ReturnCode::kInvalidParam;
  }
  SemaphoreObject& sem = semaphores_[static_cast<std::size_t>(id.value())];
  if (!sem.state.signal()) return ReturnCode::kNoAction;  // at maximum
  wake_first(sem.waiters);
  return ReturnCode::kNoError;
}

// ---------- events ----------

ReturnCode Apex::create_event(std::string name, EventId& out) {
  if (!in_init_mode()) return ReturnCode::kInvalidMode;
  events_.push_back({ipc::EventState{std::move(name)}, {}});
  out = EventId{static_cast<std::int32_t>(events_.size() - 1)};
  return ReturnCode::kNoError;
}

ReturnCode Apex::set_event(EventId id) {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= events_.size()) {
    return ReturnCode::kInvalidParam;
  }
  EventObject& event = events_[static_cast<std::size_t>(id.value())];
  event.state.set();
  wake_all(event.waiters);
  return ReturnCode::kNoError;
}

ReturnCode Apex::reset_event(EventId id) {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= events_.size()) {
    return ReturnCode::kInvalidParam;
  }
  events_[static_cast<std::size_t>(id.value())].state.reset();
  return ReturnCode::kNoError;
}

ServiceResult Apex::wait_event(EventId id, Ticks timeout, bool resumed) {
  if (!id.valid() || static_cast<std::size_t>(id.value()) >= events_.size()) {
    return ServiceResult::error(ReturnCode::kInvalidParam);
  }
  EventObject& event = events_[static_cast<std::size_t>(id.value())];
  pos::ProcessControlBlock* self = current_pcb();
  if (self == nullptr) return ServiceResult::error(ReturnCode::kInvalidMode);
  if (resumed && consume_timeout(*self)) {
    purge_waiter(event.waiters, self->id);
    return ServiceResult::error(ReturnCode::kTimedOut);
  }
  if (event.state.up()) return ServiceResult::ok();
  if (timeout == 0) return ServiceResult::error(ReturnCode::kNotAvailable);
  const Ticks deadline = resolve_wait_deadline(*self, timeout, resumed);
  return block_current(*self, pos::WaitReason::kEvent, deadline,
                       event.waiters);
}

}  // namespace air::apex
