// APEX interface -- the ARINC 653 Application Executive (Sect. 2.3).
//
// One Apex instance per partition, layered on the partition's PAL (and
// through it the POS kernel), the PMK channel router, the Health Monitor and
// the Partition Scheduler. This is AIR's "Portable APEX": every service is
// implemented against the PAL/IKernel abstraction, never against a concrete
// POS, so the same APEX runs over the RT kernel and the generic kernel.
//
// Implemented services (ARINC 653 P1 plus the P2 mode-based schedule
// services of Sect. 4.2):
//   partition:  GET_PARTITION_STATUS, SET_PARTITION_MODE
//   process:    CREATE_PROCESS, START, DELAYED_START, STOP, STOP_SELF,
//               SUSPEND, SUSPEND_SELF, RESUME, SET_PRIORITY, GET_MY_ID,
//               GET_PROCESS_ID, GET_PROCESS_STATUS, LOCK_PREEMPTION,
//               UNLOCK_PREEMPTION
//   time:       GET_TIME, TIMED_WAIT, PERIODIC_WAIT, REPLENISH
//   intra-ipc:  buffers, blackboards, semaphores, events (CREATE_*, and the
//               blocking SEND/RECEIVE/READ/WAIT services with timeouts)
//   inter-ipc:  CREATE/WRITE/READ_SAMPLING_*, CREATE/SEND/RECEIVE_QUEUING_*
//   health:     REPORT_APPLICATION_MESSAGE, CREATE_ERROR_HANDLER,
//               RAISE_APPLICATION_ERROR, GET_ERROR_STATUS
//   schedules:  SET_MODULE_SCHEDULE, GET_MODULE_SCHEDULE_STATUS
//
// Blocking contract: services that can wait return ServiceResult. When
// `blocked` is true the caller process was put in the waiting state; the
// executor re-issues the call with `resumed = true` after the process
// wakes, and the service then either completes or re-blocks against the
// original absolute timeout (ProcessControlBlock::wait_deadline).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apex/types.hpp"
#include "hm/health_monitor.hpp"
#include "ipc/intra.hpp"
#include "ipc/ports.hpp"
#include "ipc/router.hpp"
#include "pal/pal.hpp"
#include "pmk/partition.hpp"
#include "pmk/partition_scheduler.hpp"

namespace air::apex {

class Apex {
 public:
  Apex(PartitionId partition, pmk::PartitionControlBlock& pcb, pal::Pal& pal,
       ipc::Router& router, hm::HealthMonitor& health,
       pmk::PartitionScheduler& scheduler, std::function<Ticks()> now_fn);

  [[nodiscard]] PartitionId partition() const { return partition_; }
  [[nodiscard]] pal::Pal& pal() { return pal_; }
  [[nodiscard]] pos::IKernel& kernel() { return pal_.kernel(); }
  [[nodiscard]] pmk::PartitionControlBlock& partition_pcb() { return pcb_; }

  // ---------- partition management ----------
  [[nodiscard]] PartitionStatus get_partition_status() const;
  ReturnCode set_partition_mode(pmk::OperatingMode mode);

  // ---------- process management ----------
  ReturnCode create_process(const pos::ProcessAttributes& attrs,
                            ProcessId& out);
  ReturnCode start(ProcessId pid);
  ReturnCode delayed_start(ProcessId pid, Ticks delay);
  ReturnCode stop(ProcessId pid);
  ReturnCode stop_self();
  ServiceResult suspend_self(Ticks timeout, bool resumed);
  ReturnCode suspend(ProcessId pid);
  ReturnCode resume(ProcessId pid);
  ReturnCode set_priority(ProcessId pid, Priority priority);
  [[nodiscard]] ProcessId get_my_id() const;
  ReturnCode get_process_id(std::string_view name, ProcessId& out) const;
  ReturnCode get_process_status(ProcessId pid, ProcessStatus& out) const;
  ReturnCode lock_preemption();
  ReturnCode unlock_preemption();

  // ---------- time management ----------
  [[nodiscard]] Ticks get_time() const { return now_fn_(); }
  ServiceResult timed_wait(Ticks delay);
  ServiceResult periodic_wait();
  ReturnCode replenish(Ticks budget);

  // ---------- sporadic activation (model extension, future work iii) ----
  /// Block the calling sporadic process until it is released *and* its
  /// minimum inter-arrival time (attrs.period) since the previous
  /// activation has elapsed.
  ServiceResult sporadic_wait();
  /// Release a sporadic process for its next activation. A release landing
  /// while the target is still busy is buffered (one deep; further ones
  /// count as lost). Returns kInvalidMode for non-sporadic/dormant targets.
  ReturnCode release_process(ProcessId pid);

  // ---------- intrapartition communication ----------
  ReturnCode create_buffer(
      std::string name, std::size_t max_bytes, std::size_t capacity,
      BufferId& out,
      ipc::QueuingDiscipline discipline = ipc::QueuingDiscipline::kFifo);
  ReturnCode create_blackboard(std::string name, std::size_t max_bytes,
                               BlackboardId& out);
  ReturnCode create_semaphore(
      std::string name, std::int32_t initial, std::int32_t maximum,
      SemaphoreId& out,
      ipc::QueuingDiscipline discipline = ipc::QueuingDiscipline::kFifo);
  ReturnCode create_event(std::string name, EventId& out);

  ServiceResult send_buffer(BufferId id, std::string message, Ticks timeout,
                            bool resumed);
  ServiceResult receive_buffer(BufferId id, Ticks timeout, std::string& out,
                               bool resumed);
  ReturnCode display_blackboard(BlackboardId id, std::string message);
  ReturnCode clear_blackboard(BlackboardId id);
  ServiceResult read_blackboard(BlackboardId id, Ticks timeout,
                                std::string& out, bool resumed);
  ServiceResult wait_semaphore(SemaphoreId id, Ticks timeout, bool resumed);
  ReturnCode signal_semaphore(SemaphoreId id);
  ReturnCode set_event(EventId id);
  ReturnCode reset_event(EventId id);
  ServiceResult wait_event(EventId id, Ticks timeout, bool resumed);

  /// Name-based id lookup for intrapartition objects (ARINC 653
  /// GET_*_ID services).
  ReturnCode get_buffer_id(std::string_view name, BufferId& out) const;
  ReturnCode get_blackboard_id(std::string_view name,
                               BlackboardId& out) const;
  ReturnCode get_semaphore_id(std::string_view name, SemaphoreId& out) const;
  ReturnCode get_event_id(std::string_view name, EventId& out) const;

  /// Status services (ARINC 653 GET_*_STATUS).
  ReturnCode get_buffer_status(BufferId id, BufferStatus& out) const;
  ReturnCode get_blackboard_status(BlackboardId id,
                                   BlackboardStatus& out) const;
  ReturnCode get_semaphore_status(SemaphoreId id,
                                  SemaphoreStatus& out) const;
  ReturnCode get_event_status(EventId id, EventStatus& out) const;
  ReturnCode get_sampling_port_status(PortId id,
                                      SamplingPortStatus& out) const;
  ReturnCode get_queuing_port_status(PortId id,
                                     QueuingPortStatus& out) const;

  // ---------- interpartition communication ----------
  /// Integration-time port definition (from the module configuration); the
  /// returned index is what workload scripts reference.
  PortId define_sampling_port(std::string name, ipc::PortDirection direction,
                              std::size_t max_bytes, Ticks refresh_period);
  PortId define_queuing_port(
      std::string name, ipc::PortDirection direction, std::size_t max_bytes,
      std::size_t capacity,
      ipc::QueuingDiscipline discipline = ipc::QueuingDiscipline::kFifo);

  /// APEX CREATE_*_PORT: binds to a configured port by name.
  ReturnCode create_sampling_port(std::string_view name, PortId& out) const;
  ReturnCode create_queuing_port(std::string_view name, PortId& out) const;

  // Send legs take a view: the bytes land straight in the pooled
  // ipc::Payload (inline up to Payload::kInlineBytes), so the steady-state
  // hot path never copies through a heap std::string.
  ReturnCode write_sampling_message(PortId port, std::string_view message);
  ReturnCode read_sampling_message(PortId port, std::string& out,
                                   bool& valid);
  ServiceResult send_queuing_message(PortId port, std::string_view message,
                                     Ticks timeout, bool resumed);
  ServiceResult receive_queuing_message(PortId port, Ticks timeout,
                                        std::string& out, bool resumed);

  /// Module wiring: a message landed on / space opened in one of this
  /// partition's queuing ports -- wake blocked processes.
  void notify_queuing_delivery(std::string_view port_name);
  void notify_queuing_space(std::string_view port_name);

  // ---------- health monitoring ----------
  ReturnCode report_application_message(std::string message);
  ReturnCode create_error_handler(pos::Script script,
                                  std::size_t stack_bytes);
  ReturnCode raise_application_error(std::int32_t code, std::string message);
  ReturnCode get_error_status(ErrorStatus& out);
  /// HM hook target: activate the error handler for `report`; false when the
  /// partition created no handler.
  bool activate_error_handler(const hm::ErrorReport& report);
  [[nodiscard]] ProcessId error_handler() const { return error_handler_; }

  // ---------- mode-based schedules (ARINC 653 P2, Sect. 4.2) ----------
  ReturnCode set_module_schedule(ScheduleId schedule);
  [[nodiscard]] ModuleScheduleStatus get_module_schedule_status() const;

  // ---------- wiring ----------
  /// Module mechanism for partition restarts/shutdown requested through
  /// SET_PARTITION_MODE (cold/warm start and idle transitions).
  std::function<void(pmk::OperatingMode)> on_mode_transition;
  /// Partition console sink (VITRAL window).
  std::function<void(std::string_view)> console;

  /// Record message-lifetime and schedule-switch spans (send/receive legs
  /// parented on the caller's job span). nullptr = off.
  void set_spans(telemetry::SpanRecorder* spans) { spans_ = spans; }

  /// Called by the module when the partition (re)enters NORMAL mode.
  void enter_normal_mode();

  /// Partition restart support: clears APEX object state built at runtime.
  void reset_runtime_state();

 private:
  struct WaitQueue {
    ipc::QueuingDiscipline discipline{ipc::QueuingDiscipline::kFifo};
    std::deque<ProcessId> waiters;
  };

  // Object + its wait queues.
  struct BufferObject {
    ipc::BufferState state;
    WaitQueue senders;
    WaitQueue receivers;
  };
  struct BlackboardObject {
    ipc::BlackboardState state;
    WaitQueue readers;
  };
  struct SemaphoreObject {
    ipc::SemaphoreState state;
    WaitQueue waiters;
  };
  struct EventObject {
    ipc::EventState state;
    WaitQueue waiters;
  };
  struct SamplingPortObject {
    std::unique_ptr<ipc::SamplingPort> port;
  };
  struct QueuingPortObject {
    std::unique_ptr<ipc::QueuingPort> port;
    WaitQueue senders;    // blocked on full source queue
    WaitQueue receivers;  // blocked on empty destination queue
  };

  [[nodiscard]] bool in_init_mode() const {
    return pcb_.mode == pmk::OperatingMode::kColdStart ||
           pcb_.mode == pmk::OperatingMode::kWarmStart;
  }
  [[nodiscard]] pos::ProcessControlBlock* current_pcb();

  /// Common prologue for blocking calls: resolve the absolute timeout
  /// deadline (fresh or preserved across retries).
  Ticks resolve_wait_deadline(pos::ProcessControlBlock& self, Ticks timeout,
                              bool resumed);
  /// Block the current process on `reason` until `deadline`.
  ServiceResult block_current(pos::ProcessControlBlock& self,
                              pos::WaitReason reason, Ticks deadline,
                              WaitQueue& queue);
  static void purge_waiter(WaitQueue& queue, ProcessId pid);
  void purge_from_all_queues(ProcessId pid);
  void wake_first(WaitQueue& queue);
  void wake_all(WaitQueue& queue);

  void start_now(ProcessId pid);

  PartitionId partition_;
  pmk::PartitionControlBlock& pcb_;
  pal::Pal& pal_;
  ipc::Router& router_;
  hm::HealthMonitor& health_;
  pmk::PartitionScheduler& scheduler_;
  std::function<Ticks()> now_fn_;
  telemetry::SpanRecorder* spans_{nullptr};

  std::vector<BufferObject> buffers_;
  std::vector<BlackboardObject> blackboards_;
  std::vector<SemaphoreObject> semaphores_;
  std::vector<EventObject> events_;
  std::vector<SamplingPortObject> sampling_ports_;
  std::vector<QueuingPortObject> queuing_ports_;

  std::vector<ProcessId> pending_starts_;  // STARTed during initialisation
  ProcessId error_handler_{ProcessId::invalid()};
  std::deque<ErrorStatus> pending_errors_;
};

}  // namespace air::apex
