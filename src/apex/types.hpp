// APEX service types: return codes and status structures (ARINC 653 P1/P2).
#pragma once

#include <cstdint>
#include <string>

#include "pmk/partition.hpp"
#include "pos/process.hpp"
#include "util/types.hpp"

namespace air::apex {

/// ARINC 653 service return codes.
enum class ReturnCode : std::uint8_t {
  kNoError = 0,       // request valid and operation performed
  kNoAction = 1,      // system in proper state, no action performed
  kNotAvailable = 2,  // resource unavailable right now
  kInvalidParam = 3,  // parameter outside the valid range
  kInvalidConfig = 4, // parameter incompatible with the configuration
  kInvalidMode = 5,   // request incompatible with the current mode
  kTimedOut = 6,      // the time expired before the request could complete
};

[[nodiscard]] constexpr const char* to_string(ReturnCode code) {
  switch (code) {
    case ReturnCode::kNoError: return "NO_ERROR";
    case ReturnCode::kNoAction: return "NO_ACTION";
    case ReturnCode::kNotAvailable: return "NOT_AVAILABLE";
    case ReturnCode::kInvalidParam: return "INVALID_PARAM";
    case ReturnCode::kInvalidConfig: return "INVALID_CONFIG";
    case ReturnCode::kInvalidMode: return "INVALID_MODE";
    case ReturnCode::kTimedOut: return "TIMED_OUT";
  }
  return "?";
}

/// Result of a potentially blocking APEX call. When `blocked` is true the
/// calling process has been placed in the waiting state and must re-issue
/// the call after it wakes (the executor does this automatically); `code`
/// is then meaningless.
struct ServiceResult {
  ReturnCode code{ReturnCode::kNoError};
  bool blocked{false};

  static ServiceResult ok() { return {ReturnCode::kNoError, false}; }
  static ServiceResult error(ReturnCode code) { return {code, false}; }
  static ServiceResult block() { return {ReturnCode::kNoError, true}; }
};

/// GET_PARTITION_STATUS output.
struct PartitionStatus {
  PartitionId id;
  pmk::OperatingMode mode{pmk::OperatingMode::kColdStart};
  bool system_partition{false};
};

/// GET_PROCESS_STATUS output (attributes + current status, eq. 11/12).
struct ProcessStatus {
  ProcessId id;
  std::string name;
  Ticks period{0};
  Ticks time_capacity{0};
  Priority base_priority{0};
  Priority current_priority{0};
  Ticks deadline_time{kInfiniteTime};  // D'(t)
  pos::ProcessState state{pos::ProcessState::kDormant};
  // Diagnostics (beyond ARINC 653): observed activation statistics.
  std::uint64_t completions{0};
  Ticks max_response{0};
  double mean_response{0.0};
  std::uint64_t deadline_misses{0};
};

/// GET_MODULE_SCHEDULE_STATUS output (ARINC 653 P2, Sect. 4.2).
struct ModuleScheduleStatus {
  Ticks last_switch_time{0};  // 0 when no switch ever occurred
  ScheduleId current_schedule;
  ScheduleId next_schedule;   // == current when no switch pending
};

/// GET_ERROR_STATUS output (error handler support).
struct ErrorStatus {
  std::int32_t error_code{0};
  ProcessId failed_process;
  std::string message;
  Ticks when{0};
};

/// GET_BUFFER_STATUS output.
struct BufferStatus {
  std::size_t nb_message{0};       // messages currently queued
  std::size_t max_nb_message{0};   // capacity
  std::size_t max_message_size{0};
  std::size_t waiting_processes{0};  // blocked senders + receivers
};

/// GET_BLACKBOARD_STATUS output.
struct BlackboardStatus {
  bool empty{true};
  std::size_t max_message_size{0};
  std::size_t waiting_processes{0};
};

/// GET_SEMAPHORE_STATUS output.
struct SemaphoreStatus {
  std::int32_t current_value{0};
  std::int32_t maximum_value{0};
  std::size_t waiting_processes{0};
};

/// GET_EVENT_STATUS output.
struct EventStatus {
  bool up{false};
  std::size_t waiting_processes{0};
};

/// GET_SAMPLING_PORT_STATUS output.
struct SamplingPortStatus {
  std::size_t max_message_size{0};
  Ticks refresh_period{kInfiniteTime};
  bool has_message{false};
  bool last_valid{false};  // validity at the time of the status call
};

/// GET_QUEUING_PORT_STATUS output.
struct QueuingPortStatus {
  std::size_t nb_message{0};
  std::size_t max_nb_message{0};
  std::size_t max_message_size{0};
  std::size_t waiting_processes{0};
  std::uint64_t overflows{0};
};

}  // namespace air::apex
