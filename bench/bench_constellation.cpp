// Constellation scaling: the switched virtual-link topology vs the naive
// flat broadcast as the module count grows to 1000 (DESIGN.md §13). Every
// module is a small busy satellite (one partition, periodic compute,
// sampling-ring traffic to its neighbour) flown under the epoch driver, so
// the figure stresses exactly the constellation hot paths: Bus::
// next_delivery / idle_ticks horizon queries, the per-switch TDMA pump,
// and the World/Kernel structure-of-arrays sweeps.
//
// The checked figure is modules_per_second (module-ticks retired per
// second) at 1000 modules: switched / flat >= 4 (bench/
// check_constellation.py). The satellites are idle-dominated (a beacon
// every ~400 ticks, no filler compute), so wall time is the per-tick
// bus + scheduler machinery, not partition workloads. On the flat bus one
// global TDMA cycle is 2 * N ticks long: at 1000 stations the queues never
// drain, the bus never goes quiet, and the epoch driver is pinned to
// propagation-length epochs -- every few simulated ticks it pays a full
// O(N) module sweep. 8-station switches run 125 concurrent 8-tick cycles,
// drain each beacon burst within ~10 ticks, and the constellation then
// warps through the ~390-tick quiet stretches in long epochs.
#include <benchmark/benchmark.h>

#include "system/world.hpp"

namespace {

using namespace air;
using pos::ScriptBuilder;

constexpr Ticks kTicks = 1000;         // simulated span per iteration
constexpr std::size_t kPerSwitch = 8;  // stations per switch (switched)

// A small satellite: one partition owning the whole MTF and a single
// beacon process (write + read the sampling ring, then sleep ~400 ticks).
// No filler compute: the per-module work is a handful of script events per
// beacon period, so the bench measures the data-plane machinery.
// memory_bytes is trimmed (the 16 MiB default would be 16 GiB of host RSS
// at 1000 modules); telemetry captures are bounded.
system::ModuleConfig satellite(int id, int nmodules) {
  system::ModuleConfig config;
  config.id = ModuleId{id};
  config.name = "sat" + std::to_string(id);
  config.memory_bytes = 256u << 10;
  config.telemetry.flight_recorder_capacity = 64;
  config.telemetry.spans_capacity = 256;
  constexpr Ticks kMtf = 500;

  system::PartitionConfig partition;
  partition.name = "flight";
  partition.sampling_ports.push_back(
      {"OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
  partition.sampling_ports.push_back(
      {"IN", ipc::PortDirection::kDestination, 64, kInfiniteTime});
  system::ProcessConfig chatter;
  chatter.attrs.name = "chatter";
  chatter.attrs.priority = 20;
  chatter.attrs.script = ScriptBuilder{}
                             .sampling_write(0, "beacon")
                             .sampling_read(1)
                             .timed_wait(400)
                             .build();
  partition.processes.push_back(std::move(chatter));
  config.partitions.push_back(std::move(partition));

  ipc::ChannelConfig ring;
  ring.id = ChannelId{0};
  ring.kind = ipc::ChannelKind::kSampling;
  ring.source = {PartitionId{0}, "OUT"};
  ring.remote_destinations = {
      {ModuleId{(id + 1) % nmodules}, PartitionId{0}, "IN"}};
  config.channels.push_back(std::move(ring));

  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = kMtf;
  schedule.requirements = {{PartitionId{0}, kMtf, kMtf}};
  schedule.windows = {{PartitionId{0}, 0, kMtf}};
  config.schedules = {schedule};
  return config;
}

std::unique_ptr<system::World> build_constellation(int nmodules,
                                                   std::size_t per_switch) {
  // Slot geometry sized so a switch cycle (8 stations x 1-tick slots) drains
  // a full beacon burst within ~10 ticks of the ~400-tick beacon period --
  // the switched bus then goes quiet and the epoch driver warps the
  // constellation across the long gap. Short cycles matter twice over: each
  // occupied TDMA slot tick is a delivery tick, and every delivery tick
  // bounds an epoch, so an 8-tick cycle costs ~10 short epochs per burst
  // where a 2 * N flat cycle (2000 ticks at 1000 stations) never drains at
  // all and pins the whole constellation to propagation-length epochs.
  auto world = std::make_unique<system::World>(
      net::BusConfig{.slot_length = 1,
                     .frames_per_slot = 4,
                     .propagation_delay = 2,
                     .stations_per_switch = per_switch,
                     .switch_hop_delay = 2});
  for (int m = 0; m < nmodules; ++m) {
    world->add_module(satellite(m, nmodules));
    // Every beacon rides a reserved virtual link with a bandwidth budget
    // matching its ~400-tick period and a generous jitter budget, so the
    // VL accounting is on the hot path without gating the steady state.
    world->bus().define_virtual_link({ModuleId{m},
                                      ModuleId{(m + 1) % nmodules},
                                      /*min_gap=*/100,
                                      /*jitter_budget=*/kInfiniteTime});
  }
  return world;
}

void run_constellation(benchmark::State& state, std::size_t per_switch) {
  const int nmodules = static_cast<int>(state.range(0));
  double module_ticks = 0;
  double epochs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto world = build_constellation(nmodules, per_switch);
    state.ResumeTiming();
    world->run(kTicks);
    state.PauseTiming();
    module_ticks += static_cast<double>(nmodules) * kTicks;
    epochs += static_cast<double>(world->stats().epochs);
    state.ResumeTiming();
  }
  state.counters["modules_per_second"] =
      benchmark::Counter(module_ticks, benchmark::Counter::kIsRate);
  state.counters["modules"] = benchmark::Counter(nmodules);
  state.counters["switches"] = benchmark::Counter(
      per_switch == 0 ? 1.0
                      : static_cast<double>((nmodules + per_switch - 1) /
                                            per_switch));
  if (epochs > 0) {
    state.counters["mean_epoch_ticks"] =
        benchmark::Counter(module_ticks / static_cast<double>(nmodules) /
                           epochs);
  }
}

void BM_Constellation_Switched(benchmark::State& state) {
  run_constellation(state, kPerSwitch);
}
BENCHMARK(BM_Constellation_Switched)
    ->Arg(64)->Arg(256)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// The ablation strawman: the same 1000-module mission on one flat
// broadcast domain. check_constellation.py gates switched/flat >= 4.
void BM_Constellation_Flat(benchmark::State& state) {
  run_constellation(state, 0);
}
BENCHMARK(BM_Constellation_Flat)
    ->Arg(64)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
