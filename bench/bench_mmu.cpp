// E11 -- spatial partitioning mechanisms (Sect. 2.1, Fig. 3).
//
// Measured: TLB-hit translation, full three-level table walks on TLB miss,
// the cost of a partition context switch (TLB invalidation + refill), and
// checked memory accesses including the faulting path.
#include <benchmark/benchmark.h>

#include "hal/machine.hpp"
#include "pmk/spatial.hpp"

namespace {

using namespace air;

struct Fixture {
  Fixture() : machine(8u << 20), spatial(machine) {
    ctx_a = spatial.setup_partition(PartitionId{0}, {}).context;
    ctx_b = spatial.setup_partition(PartitionId{1}, {}).context;
    machine.mmu().set_active_context(ctx_a);
  }

  hal::Machine machine;
  pmk::SpatialManager spatial;
  hal::MmuContextId ctx_a{-1};
  hal::MmuContextId ctx_b{-1};
};

void BM_TranslateTlbHit(benchmark::State& state) {
  Fixture fx;
  // Prime the TLB.
  (void)fx.machine.mmu().translate(pmk::kAppDataBase, hal::AccessType::kRead,
                                   hal::ExecLevel::kApplication);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.machine.mmu().translate(
        pmk::kAppDataBase, hal::AccessType::kRead,
        hal::ExecLevel::kApplication));
  }
  state.counters["tlb_hit_rate"] = benchmark::Counter(
      static_cast<double>(fx.machine.mmu().stats().tlb_hits) /
      static_cast<double>(fx.machine.mmu().stats().tlb_hits +
                          fx.machine.mmu().stats().tlb_misses));
}
BENCHMARK(BM_TranslateTlbHit);

void BM_TranslateTlbMissWalk(benchmark::State& state) {
  Fixture fx;
  // Touch a different page each time across a large mapped range so the
  // 32-entry TLB keeps missing.
  const std::size_t pages = 16 << 10 >> 12;  // app data pages
  std::size_t i = 0;
  for (auto _ : state) {
    fx.machine.mmu().flush_tlb();
    const hal::VirtAddr vaddr =
        pmk::kAppDataBase +
        static_cast<hal::VirtAddr>((i++ % pages) << 12);
    benchmark::DoNotOptimize(fx.machine.mmu().translate(
        vaddr, hal::AccessType::kRead, hal::ExecLevel::kApplication));
  }
}
BENCHMARK(BM_TranslateTlbMissWalk);

void BM_PartitionContextSwitch(benchmark::State& state) {
  Fixture fx;
  bool flip = false;
  for (auto _ : state) {
    fx.machine.mmu().set_active_context(flip ? fx.ctx_a : fx.ctx_b);
    flip = !flip;
    // First access after the switch pays the refill.
    benchmark::DoNotOptimize(fx.machine.mmu().translate(
        pmk::kAppDataBase, hal::AccessType::kRead,
        hal::ExecLevel::kApplication));
  }
}
BENCHMARK(BM_PartitionContextSwitch);

void BM_CheckedWrite(benchmark::State& state) {
  Fixture fx;
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.machine.checked_write(
        pmk::kAppDataBase, data, hal::ExecLevel::kApplication));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckedWrite)->Arg(4)->Arg(64)->Arg(4096);

void BM_FaultingAccess(benchmark::State& state) {
  // Violation detection cost: unmapped address, returns the fault.
  Fixture fx;
  std::array<std::byte, 4> buf{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.machine.checked_read(
        0x7000'0000, buf, hal::ExecLevel::kApplication));
  }
}
BENCHMARK(BM_FaultingAccess);

void BM_ProtectionDeniedAccess(benchmark::State& state) {
  // Application-level access to the PMK region: mapped but protected.
  Fixture fx;
  std::array<std::byte, 4> buf{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.machine.checked_read(
        pmk::kPmkBase, buf, hal::ExecLevel::kApplication));
  }
}
BENCHMARK(BM_ProtectionDeniedAccess);

}  // namespace
