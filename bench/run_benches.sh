#!/usr/bin/env bash
# Run every bench_* binary in --json mode, writing one BENCH_<name>.json per
# binary -- the machine-readable perf trajectory the ROADMAP asks for.
#
# Usage: bench/run_benches.sh <build-dir> [out-dir] [extra bench args...]
# Example: bench/run_benches.sh build perf --benchmark_min_time=0.1s
set -euo pipefail

build_dir=${1:?usage: run_benches.sh <build-dir> [out-dir] [extra args...]}
out_dir=${2:-.}
shift $(( $# >= 2 ? 2 : 1 ))

mkdir -p "$out_dir"
found=0
for bin in "$build_dir"/bench/bench_*; do
  [[ -x "$bin" && -f "$bin" ]] || continue
  name=$(basename "$bin")
  name=${name#bench_}
  out="$out_dir/BENCH_${name}.json"
  echo "== $name -> $out"
  # Explicit status check: a crashing or failing bench binary must fail the
  # whole run (set -e alone is silent about *which* binary died).
  if ! "$bin" --json="$out" "$@"; then
    echo "error: $name exited non-zero" >&2
    exit 1
  fi
  # Sanity: the file must exist and be parseable JSON-ish (non-empty).
  [[ -s "$out" ]] || { echo "error: $out is empty" >&2; exit 1; }
  found=1
done

if [[ $found -eq 0 ]]; then
  echo "error: no bench binaries found under $build_dir/bench" >&2
  exit 1
fi
