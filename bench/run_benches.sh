#!/usr/bin/env bash
# Run every bench_* binary in --json mode, writing one BENCH_<name>.json per
# binary -- the machine-readable perf trajectory the ROADMAP asks for.
#
# Usage: bench/run_benches.sh <build-dir> [out-dir] [extra bench args...]
# Example: bench/run_benches.sh build perf --benchmark_min_time=0.1s
set -euo pipefail

build_dir=${1:?usage: run_benches.sh <build-dir> [out-dir] [extra args...]}
out_dir=${2:-.}
shift $(( $# >= 2 ? 2 : 1 ))

# Numbers from an unoptimised tree are not a perf trajectory: stamp every
# BENCH_*.json with the tree's actual CMAKE_BUILD_TYPE and warn loudly when
# it is anything but Release (empty = default flags, i.e. no -O level).
build_type=""
if [[ -f "$build_dir/CMakeCache.txt" ]]; then
  build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")
fi
if [[ "$build_type" != "Release" ]]; then
  echo "WARNING: bench tree '$build_dir' has CMAKE_BUILD_TYPE='${build_type:-<unset>}'" >&2
  echo "WARNING: numbers below are NOT comparable to Release baselines" >&2
fi

mkdir -p "$out_dir"
found=0
for bin in "$build_dir"/bench/bench_*; do
  [[ -x "$bin" && -f "$bin" ]] || continue
  name=$(basename "$bin")
  name=${name#bench_}
  out="$out_dir/BENCH_${name}.json"
  echo "== $name -> $out"
  # Explicit status check: a crashing or failing bench binary must fail the
  # whole run (set -e alone is silent about *which* binary died).
  if ! "$bin" --json="$out" "$@"; then
    echo "error: $name exited non-zero" >&2
    exit 1
  fi
  # Sanity: the file must exist and be parseable JSON-ish (non-empty).
  [[ -s "$out" ]] || { echo "error: $out is empty" >&2; exit 1; }
  # Stamp the build type into the document (top-level key), so a stray
  # debug-tree run is self-incriminating instead of silently polluting the
  # perf trajectory.
  python3 - "$out" "$build_type" <<'EOF'
import json, sys
path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
doc["cmake_build_type"] = build_type or "unset"
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
  found=1
done

if [[ $found -eq 0 ]]; then
  echo "error: no bench binaries found under $build_dir/bench" >&2
  exit 1
fi
