#!/usr/bin/env bash
# Run every bench_* binary in --json mode, writing one BENCH_<name>.json per
# binary -- the machine-readable perf trajectory the ROADMAP asks for.
#
# Usage: bench/run_benches.sh [--allow-debug] [build-dir] [out-dir] [extra bench args...]
# Example: bench/run_benches.sh                      # Release tree, CWD output
#          bench/run_benches.sh build-release perf --benchmark_min_time=0.1
#
# With no build-dir (or the default "build-release") the script *owns* the
# tree: it configures it as CMAKE_BUILD_TYPE=Release with
# CMAKE_INTERPROCEDURAL_OPTIMIZATION=ON and (re)builds the bench binaries
# before running them, so every number in a BENCH_*.json comes from an
# optimised, LTO'd build -- the Release contract (DESIGN.md §11).
#
# Pointing it at an existing non-Release tree is an error: debug timings
# silently poisoning the checked-in baselines is exactly the failure mode
# this script exists to prevent. --allow-debug is the escape hatch for local
# smoke runs (the JSON is still stamped with the real build type, so a stray
# debug artifact remains self-incriminating).
set -euo pipefail

allow_debug=0
if [[ "${1:-}" == "--allow-debug" ]]; then
  allow_debug=1
  shift
fi

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-build-release}
out_dir=${2:-.}
if [[ $# -ge 2 ]]; then shift 2; elif [[ $# -ge 1 ]]; then shift 1; fi

# Configure the dedicated Release tree on first use. An existing cache is
# reused as-is (incremental rebuild below); a foreign tree is only checked,
# never reconfigured behind its owner's back.
if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  echo "== configuring Release bench tree: $build_dir"
  cmake -S "$repo_root" -B "$build_dir" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_INTERPROCEDURAL_OPTIMIZATION=ON >/dev/null
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")
if [[ "$build_type" != "Release" ]]; then
  echo "error: bench tree '$build_dir' has CMAKE_BUILD_TYPE='${build_type:-<unset>}'" >&2
  echo "error: baselines must come from a Release tree; re-run with no" >&2
  echo "error: build-dir argument to use the managed 'build-release' tree," >&2
  echo "error: or pass --allow-debug for a local (non-baseline) smoke run" >&2
  [[ $allow_debug -eq 1 ]] || exit 1
  echo "WARNING: --allow-debug: numbers below are NOT comparable to Release baselines" >&2
fi

echo "== building bench binaries in $build_dir (${build_type:-unset})"
cmake --build "$build_dir" -j"$(nproc)" >/dev/null

mkdir -p "$out_dir"
found=0
for bin in "$build_dir"/bench/bench_*; do
  [[ -x "$bin" && -f "$bin" ]] || continue
  name=$(basename "$bin")
  name=${name#bench_}
  out="$out_dir/BENCH_${name}.json"
  echo "== $name -> $out"
  # Explicit status check: a crashing or failing bench binary must fail the
  # whole run (set -e alone is silent about *which* binary died).
  if ! "$bin" --json="$out" "$@"; then
    echo "error: $name exited non-zero" >&2
    exit 1
  fi
  # Sanity: the file must exist and be parseable JSON-ish (non-empty).
  [[ -s "$out" ]] || { echo "error: $out is empty" >&2; exit 1; }
  # Stamp the build type into the document (top-level key), so a stray
  # debug-tree run is self-incriminating instead of silently polluting the
  # perf trajectory.
  python3 - "$out" "$build_type" <<'EOF'
import json, sys
path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
doc["cmake_build_type"] = build_type or "unset"
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
  found=1
done

if [[ $found -eq 0 ]]; then
  echo "error: no bench binaries found under $build_dir/bench" >&2
  exit 1
fi
