// Whole-module macro benchmark: cost of one simulated clock tick for the
// Fig. 8 system (scheduler + dispatcher + channel pump + PAL announce +
// process execution), with and without tracing, plus executor service
// throughput.
#include <benchmark/benchmark.h>

#include "config/fig8.hpp"
#include "system/module.hpp"

namespace {

using namespace air;

void BM_ModuleTick_Fig8(benchmark::State& state) {
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  options.trace_enabled = state.range(0) != 0;
  system::ModuleConfig config = scenarios::fig8_config(options);
  // This file is the perf-trajectory baseline: span recording is off here
  // and quantified separately in bench_telemetry.cpp.
  config.telemetry.spans_enabled = false;
  system::Module module(std::move(config));
  for (auto _ : state) {
    module.tick_once();
  }
  state.counters["sim_ticks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModuleTick_Fig8)
    ->Arg(0)  // trace off
    ->Arg(1); // trace on

void BM_ModuleTick_ManyPartitions(benchmark::State& state) {
  // Scale the partition count: each gets an equal window in a generated
  // round-robin table.
  const int n = static_cast<int>(state.range(0));
  system::ModuleConfig config;
  config.trace_enabled = false;
  config.telemetry.spans_enabled = false;
  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = static_cast<Ticks>(n) * 20;
  for (int i = 0; i < n; ++i) {
    system::PartitionConfig partition;
    partition.name = "P" + std::to_string(i);
    system::ProcessConfig process;
    process.attrs.name = "work";
    process.attrs.period = schedule.mtf;
    process.attrs.time_capacity = schedule.mtf;
    process.attrs.priority = 10;
    process.attrs.script =
        pos::ScriptBuilder{}.compute(15).periodic_wait().build();
    partition.processes.push_back(std::move(process));
    config.partitions.push_back(std::move(partition));
    schedule.requirements.push_back({PartitionId{i}, schedule.mtf, 20});
    schedule.windows.push_back({PartitionId{i}, i * 20, 20});
  }
  config.schedules = {schedule};
  system::Module module(std::move(config));
  for (auto _ : state) {
    module.tick_once();
  }
  state.counters["sim_ticks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModuleTick_ManyPartitions)->Arg(2)->Arg(8)->Arg(32);

// Idle-heavy mission: one sparse partition whose only process runs 5 ticks
// out of every 10'000 -- the profile the next-event time warp targets. The
// CI smoke gate compares sim_ticks_per_second between Arg(0) (warp off)
// and Arg(1) (warp on).
system::ModuleConfig idle_heavy_config() {
  system::ModuleConfig config;
  config.name = "idle_heavy";
  config.trace_enabled = false;
  config.telemetry.spans_enabled = false;
  constexpr Ticks kMtf = 10'000;
  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = kMtf;
  system::PartitionConfig partition;
  partition.name = "sparse";
  system::ProcessConfig process;
  process.attrs.name = "beacon";
  process.attrs.period = kMtf;
  process.attrs.time_capacity = kMtf;
  process.attrs.priority = 10;
  process.attrs.script =
      pos::ScriptBuilder{}.compute(5).periodic_wait().build();
  partition.processes.push_back(std::move(process));
  config.partitions.push_back(std::move(partition));
  schedule.requirements.push_back({PartitionId{0}, kMtf, kMtf});
  schedule.windows.push_back({PartitionId{0}, 0, kMtf});
  config.schedules = {schedule};
  return config;
}

void BM_ModuleTick_IdleHeavy(benchmark::State& state) {
  const bool warp = state.range(0) != 0;
  system::Module module(idle_heavy_config());
  module.set_time_warp(warp);
  constexpr Ticks kSpan = 10'000;
  for (auto _ : state) {
    module.run(kSpan);
  }
  state.counters["sim_ticks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kSpan),
      benchmark::Counter::kIsRate);
  state.counters["warped_ticks"] = benchmark::Counter(
      static_cast<double>(module.warp_stats().warped_ticks));
  state.counters["stepped_ticks"] = benchmark::Counter(
      static_cast<double>(module.warp_stats().stepped_ticks));
}
BENCHMARK(BM_ModuleTick_IdleHeavy)
    ->Arg(0)  // warp off
    ->Arg(1); // warp on

}  // namespace
