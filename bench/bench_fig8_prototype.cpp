// E1 -- the Fig. 8 prototype, regenerated.
//
// Runs the four-partition system under both PSTs and reports, as counters,
// the shares of processor time each partition received per MTF, which must
// match the published tables exactly:
//   chi_1: P1 200/1300, P2 200/1300, P3 200/1300, P4 700/1300
//   chi_2: P1 200/1300, P2 700/1300, P3 200/1300, P4 200/1300
// plus the simulation rate of the whole module (ticks/second).
#include <benchmark/benchmark.h>

#include <array>

#include "config/fig8.hpp"
#include "system/module.hpp"

namespace {

using namespace air;

void run_and_report(benchmark::State& state, ScheduleId schedule) {
  std::array<std::int64_t, 4> occupancy{};
  std::int64_t total = 0;

  for (auto _ : state) {
    state.PauseTiming();
    scenarios::Fig8Options options;
    options.with_faulty_process = false;
    options.trace_enabled = false;  // hot path only
    system::Module module(scenarios::fig8_config(options));
    if (schedule != ScheduleId{0}) {
      (void)module.apex(module.partition_id("AOCS"))
          .set_module_schedule(schedule);
      module.run(scenarios::kFig8Mtf);  // let the switch take effect
    }
    occupancy = {};
    total = 0;
    state.ResumeTiming();

    for (Ticks t = 0; t < 10 * scenarios::kFig8Mtf; ++t) {
      module.tick_once();
      const PartitionId active = module.dispatcher().active_partition();
      if (active.valid()) {
        ++occupancy[static_cast<std::size_t>(active.value())];
      }
      ++total;
    }
  }

  for (std::size_t p = 0; p < occupancy.size(); ++p) {
    state.counters["P" + std::to_string(p + 1) + "_share_x1300"] =
        benchmark::Counter(static_cast<double>(occupancy[p]) * 1300.0 /
                           static_cast<double>(total));
  }
  state.counters["ticks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 10.0 * 1300.0,
      benchmark::Counter::kIsRate);
}

void BM_Fig8_Chi1(benchmark::State& state) {
  run_and_report(state, ScheduleId{0});
}
BENCHMARK(BM_Fig8_Chi1)->Unit(benchmark::kMillisecond);

void BM_Fig8_Chi2(benchmark::State& state) {
  run_and_report(state, ScheduleId{1});
}
BENCHMARK(BM_Fig8_Chi2)->Unit(benchmark::kMillisecond);

void BM_Fig8_WithFaultInjected(benchmark::State& state) {
  // Whole-system rate with the faulty process active and the trace on --
  // the configuration the paper demonstrates.
  std::size_t misses = 0;
  Ticks mtfs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    system::Module module(scenarios::fig8_config());
    module.start_process_by_name(module.partition_id("AOCS"),
                                 scenarios::kFaultyProcessName);
    state.ResumeTiming();
    module.run(10 * scenarios::kFig8Mtf);
    state.PauseTiming();
    misses += module.trace().count(util::EventKind::kDeadlineMiss);
    mtfs += 10;
    state.ResumeTiming();
  }
  state.counters["misses_per_mtf"] = benchmark::Counter(
      static_cast<double>(misses) / static_cast<double>(mtfs));
}
BENCHMARK(BM_Fig8_WithFaultInjected)->Unit(benchmark::kMillisecond);

void BM_Fig8_Mission(benchmark::State& state) {
  // Whole-mission rate through the run() front door, warp off (Arg 0) vs
  // on (Arg 1). Fig. 8 partitions have real work every window, so the warp
  // exploits only intra-window idle spans; the counters report how many
  // ticks it could skip.
  const bool warp = state.range(0) != 0;
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  options.trace_enabled = false;
  system::Module module(scenarios::fig8_config(options));
  module.set_time_warp(warp);
  for (auto _ : state) {
    module.run(10 * scenarios::kFig8Mtf);
  }
  state.counters["sim_ticks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 10.0 * 1300.0,
      benchmark::Counter::kIsRate);
  state.counters["warped_ticks"] = benchmark::Counter(
      static_cast<double>(module.warp_stats().warped_ticks));
  state.counters["stepped_ticks"] = benchmark::Counter(
      static_cast<double>(module.warp_stats().stepped_ticks));
}
BENCHMARK(BM_Fig8_Mission)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
