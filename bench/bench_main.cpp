// Shared main for every bench_* binary.
//
// Wraps the stock Google Benchmark CLI and adds a `--json[=FILE]` flag:
//   --json        emit JSON on stdout (--benchmark_format=json)
//   --json=FILE   keep console output, write JSON to FILE
//                 (--benchmark_out=FILE --benchmark_out_format=json)
// bench/run_benches.sh relies on this to produce BENCH_<name>.json files.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      args.emplace_back("--benchmark_format=json");
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.emplace_back(std::string("--benchmark_out=") + (arg + 7));
      args.emplace_back("--benchmark_out_format=json");
    } else {
      args.emplace_back(arg);
    }
  }

  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& s : args) argv2.push_back(s.data());
  int argc2 = static_cast<int>(argv2.size());

  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
