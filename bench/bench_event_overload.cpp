// Future work (iii) -- implications of unforeseen events on the time model:
// aperiodic event handling under overload.
//
// A server partition hosts an aperiodic handler process that blocks on a
// queuing port and computes per message; a producer partition generates
// events at a configurable rate. As the arrival rate crosses the server
// window's capacity, the destination queue saturates and overflows appear
// at the source -- the shape TSP theory predicts: aperiodic load beyond the
// partition's reserved window cannot steal time from other partitions, it
// backs up in the queues instead.
//
// Counters: handled events per kilotick, destination queue overflow count,
// and mean service latency (send -> handled).
#include <benchmark/benchmark.h>

#include "system/module.hpp"

namespace {

using namespace air;
using pos::ScriptBuilder;

void BM_EventOverload(benchmark::State& state) {
  const Ticks inter_arrival = state.range(0);  // producer period
  double handled = 0;
  double overflows = 0;
  double kiloticks = 0;

  for (auto _ : state) {
    state.PauseTiming();
    system::ModuleConfig config;
    config.trace_enabled = false;

    system::PartitionConfig producer;
    producer.name = "PRODUCER";
    producer.queuing_ports.push_back(
        {"OUT", ipc::PortDirection::kSource, 32, 4});
    system::ProcessConfig gen;
    gen.attrs.name = "gen";
    gen.attrs.priority = 10;
    gen.attrs.script = ScriptBuilder{}
                           .queuing_send(0, "event", /*timeout=*/0)
                           .timed_wait(inter_arrival)
                           .build();
    producer.processes.push_back(std::move(gen));
    config.partitions.push_back(std::move(producer));

    system::PartitionConfig server;
    server.name = "SERVER";
    server.queuing_ports.push_back(
        {"IN", ipc::PortDirection::kDestination, 32, 8});
    system::ProcessConfig handler;
    handler.attrs.name = "handler";
    handler.attrs.priority = 10;
    // 10 ticks of work per event; the server window is 40/100 -> capacity
    // of ~4 events per 100 ticks.
    handler.attrs.script = ScriptBuilder{}
                               .queuing_receive(0)
                               .compute(10)
                               .log("handled")
                               .build();
    server.processes.push_back(std::move(handler));
    config.partitions.push_back(std::move(server));

    model::Schedule s;
    s.id = ScheduleId{0};
    s.mtf = 100;
    s.requirements = {{PartitionId{0}, 100, 20}, {PartitionId{1}, 100, 40}};
    s.windows = {{PartitionId{0}, 0, 20}, {PartitionId{1}, 20, 40}};
    config.schedules = {s};

    ipc::ChannelConfig channel;
    channel.id = ChannelId{0};
    channel.kind = ipc::ChannelKind::kQueuing;
    channel.source = {PartitionId{0}, "OUT"};
    channel.local_destinations = {{PartitionId{1}, "IN"}};
    config.channels.push_back(channel);

    system::Module module(std::move(config));
    state.ResumeTiming();
    module.run(10'000);
    state.PauseTiming();

    handled +=
        static_cast<double>(module.console(PartitionId{1}).size());
    // Overload shows up at the *source* port: sends that found the queue
    // full (the producer uses a zero timeout, so bursts are shed there --
    // they can never steal the server partition's window).
    apex::QueuingPortStatus status;
    (void)module.apex(PartitionId{0})
        .get_queuing_port_status(PortId{0}, status);
    overflows += static_cast<double>(status.overflows);
    kiloticks += 10.0;
    state.ResumeTiming();
  }

  state.counters["handled_per_kilotick"] =
      benchmark::Counter(handled / kiloticks);
  state.counters["shed_per_kilotick"] =
      benchmark::Counter(overflows / kiloticks);
}
// Arrival periods: 50 (underload) down to 1 (heavy overload). The server's
// capacity is ~40 events per kilotick (window 40/100, 10 ticks per event):
// handled saturates there and the excess is shed at the source.
BENCHMARK(BM_EventOverload)
    ->Arg(50)
    ->Arg(10)
    ->Arg(5)
    ->Arg(2)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
