// World scaling: sequential (lockstep) vs epoch-parallel execution of a
// multi-module world as the module count grows. Modules are busy (periodic
// compute load in every partition window, telemetry on) and exchange light
// sampling-ring traffic over the TDMA bus, so the epoch driver must win by
// overlapping module execution, not by skipping idle time. The checked
// figure is sim_ticks_per_second at 8 modules: parallel / lockstep >= 2 on
// a multicore host (bench/check_world_scale.py; the JSON context's num_cpus
// records the host parallelism for the gate).
#include <benchmark/benchmark.h>

#include "system/world.hpp"

namespace {

using namespace air;
using pos::ScriptBuilder;

constexpr Ticks kTicks = 1000;  // simulated span per iteration

model::Schedule round_robin(std::size_t partitions, Ticks slice) {
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = static_cast<Ticks>(partitions) * slice;
  for (std::size_t i = 0; i < partitions; ++i) {
    const PartitionId p{static_cast<std::int32_t>(i)};
    s.requirements.push_back({p, s.mtf, slice});
    s.windows.push_back({p, static_cast<Ticks>(i) * slice, slice});
  }
  return s;
}

// A busy module: 4 partitions in 25-tick slices, each with a periodic
// worker that computes through most of its window, partition 0 additionally
// feeding the sampling ring. Bounded recorder/span capacities keep memory
// flat over long runs; no console logging (unbounded).
system::ModuleConfig busy_module(int id, int nmodules) {
  system::ModuleConfig config;
  config.id = ModuleId{id};
  config.name = "m" + std::to_string(id);
  config.telemetry.flight_recorder_capacity = 256;
  config.telemetry.spans_capacity = 1024;
  constexpr std::size_t kParts = 4;
  constexpr Ticks kSlice = 25;
  for (std::size_t p = 0; p < kParts; ++p) {
    system::PartitionConfig partition;
    partition.name = "p" + std::to_string(p);
    if (p == 0) {
      partition.sampling_ports.push_back(
          {"OUT", ipc::PortDirection::kSource, 64, kInfiniteTime});
      partition.sampling_ports.push_back(
          {"IN", ipc::PortDirection::kDestination, 64, kInfiniteTime});
      system::ProcessConfig chatter;
      chatter.attrs.name = "chatter";
      chatter.attrs.priority = 20;
      chatter.attrs.script = ScriptBuilder{}
                                 .sampling_write(0, "ring")
                                 .sampling_read(1)
                                 .timed_wait(150)
                                 .build();
      partition.processes.push_back(std::move(chatter));
    }
    system::ProcessConfig worker;
    worker.attrs.name = "work";
    worker.attrs.period = static_cast<Ticks>(kParts) * kSlice;
    worker.attrs.time_capacity = kInfiniteTime;
    worker.attrs.priority = 10;
    worker.attrs.script = ScriptBuilder{}.compute(20).periodic_wait().build();
    partition.processes.push_back(std::move(worker));
    config.partitions.push_back(std::move(partition));
  }
  ipc::ChannelConfig ring;
  ring.id = ChannelId{0};
  ring.kind = ipc::ChannelKind::kSampling;
  ring.source = {PartitionId{0}, "OUT"};
  ring.remote_destinations = {
      {ModuleId{(id + 1) % nmodules}, PartitionId{0}, "IN"}};
  config.channels.push_back(std::move(ring));
  config.schedules = {round_robin(kParts, kSlice)};
  return config;
}

std::unique_ptr<system::World> build_world(int nmodules) {
  auto world = std::make_unique<system::World>(
      net::BusConfig{.slot_length = 8, .frames_per_slot = 2,
                     .propagation_delay = 6});
  for (int m = 0; m < nmodules; ++m) {
    world->add_module(busy_module(m, nmodules));
  }
  return world;
}

void run_scaling(benchmark::State& state, bool parallel) {
  const int nmodules = static_cast<int>(state.range(0));
  double sim_ticks = 0;
  double epochs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto world = build_world(nmodules);
    if (parallel) world->set_workers(0);  // one lane per hardware thread
    state.ResumeTiming();
    if (parallel) {
      world->run(kTicks);
    } else {
      world->run_lockstep(kTicks);
    }
    state.PauseTiming();
    sim_ticks += static_cast<double>(kTicks);
    epochs += static_cast<double>(world->stats().epochs);
    state.ResumeTiming();
  }
  state.counters["sim_ticks_per_second"] =
      benchmark::Counter(sim_ticks, benchmark::Counter::kIsRate);
  state.counters["modules"] = benchmark::Counter(nmodules);
  if (parallel && epochs > 0) {
    state.counters["mean_epoch_ticks"] = benchmark::Counter(sim_ticks / epochs);
  }
}

void BM_WorldScale_Lockstep(benchmark::State& state) {
  run_scaling(state, /*parallel=*/false);
}
BENCHMARK(BM_WorldScale_Lockstep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_WorldScale_Parallel(benchmark::State& state) {
  run_scaling(state, /*parallel=*/true);
}
BENCHMARK(BM_WorldScale_Parallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
