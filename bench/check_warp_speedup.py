#!/usr/bin/env python3
"""CI gate: assert the time warp speeds up the idle-heavy scenario.

Reads a Google Benchmark JSON file containing BM_ModuleTick_IdleHeavy/0
(warp off) and BM_ModuleTick_IdleHeavy/1 (warp on) and fails unless the
warp-on sim_ticks_per_second is at least MIN_SPEEDUP x the warp-off rate.

Usage: check_warp_speedup.py BENCH_module_tick.json [min_speedup]
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_speedup = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0

    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)

    rates = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_ModuleTick_IdleHeavy/"):
            continue
        if bench.get("run_type") == "aggregate":
            continue
        arg = name.split("/")[1]
        rate = bench.get("sim_ticks_per_second")
        if rate is not None:
            # Keep the best repetition per arg.
            rates[arg] = max(rates.get(arg, 0.0), float(rate))

    if "0" not in rates or "1" not in rates:
        print(f"error: {path} lacks BM_ModuleTick_IdleHeavy/0 and /1 "
              f"(found: {sorted(rates)})", file=sys.stderr)
        return 2

    off, on = rates["0"], rates["1"]
    speedup = on / off if off > 0 else float("inf")
    print(f"idle-heavy sim ticks/sec: warp off {off:.3e}, warp on {on:.3e} "
          f"-> speedup {speedup:.1f}x (gate: >= {min_speedup}x)")
    if speedup < min_speedup:
        print("error: time warp speedup below the gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
