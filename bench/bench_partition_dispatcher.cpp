// E6 -- Partition Dispatcher cost (Sect. 4.3, Algorithm 2).
//
// Paper claim (Fig. 5): the same-partition path is trivial (set
// elapsedTicks = 1) while a partition switch saves/restores contexts and
// applies pending schedule change actions. The context-switch path should
// cost markedly more, and the MMU context switch (TLB flush) dominates it.
#include <benchmark/benchmark.h>

#include "hal/machine.hpp"
#include "pmk/partition_dispatcher.hpp"
#include "pmk/spatial.hpp"

namespace {

using namespace air;

struct Fixture {
  Fixture() : machine(4u << 20), spatial(machine) {
    for (int i = 0; i < 2; ++i) {
      pmk::PartitionControlBlock pcb;
      pcb.id = PartitionId{i};
      pcb.last_tick = -1;
      pcb.mmu_context =
          spatial.setup_partition(PartitionId{i}, {}).context;
      pcbs.push_back(std::move(pcb));
    }
  }

  hal::Machine machine;
  pmk::SpatialManager spatial;
  std::vector<pmk::PartitionControlBlock> pcbs;
};

void BM_Dispatch_SamePartition(benchmark::State& state) {
  Fixture fx;
  pmk::PartitionDispatcher dispatcher(fx.pcbs, &fx.machine.mmu());
  Ticks t = 0;
  dispatcher.dispatch(PartitionId{0}, t++);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dispatcher.dispatch(PartitionId{0}, t++));
  }
}
BENCHMARK(BM_Dispatch_SamePartition);

void BM_Dispatch_ContextSwitch(benchmark::State& state) {
  Fixture fx;
  pmk::PartitionDispatcher dispatcher(fx.pcbs, &fx.machine.mmu());
  Ticks t = 0;
  int which = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dispatcher.dispatch(PartitionId{which ^= 1}, t++));
  }
  state.counters["context_switches"] =
      static_cast<double>(dispatcher.context_switches());
}
BENCHMARK(BM_Dispatch_ContextSwitch);

void BM_Dispatch_ContextSwitch_NoMmu(benchmark::State& state) {
  // Isolate the dispatcher bookkeeping from the MMU context switch.
  Fixture fx;
  pmk::PartitionDispatcher dispatcher(fx.pcbs, nullptr);
  Ticks t = 0;
  int which = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dispatcher.dispatch(PartitionId{which ^= 1}, t++));
  }
}
BENCHMARK(BM_Dispatch_ContextSwitch_NoMmu);

void BM_Dispatch_WindowPattern(benchmark::State& state) {
  // Realistic mix: windows of `window` ticks alternating between two
  // partitions -- one switch per window, same-partition otherwise.
  const Ticks window = state.range(0);
  Fixture fx;
  pmk::PartitionDispatcher dispatcher(fx.pcbs, &fx.machine.mmu());
  Ticks t = 0;
  for (auto _ : state) {
    const PartitionId heir{static_cast<std::int32_t>((t / window) % 2)};
    benchmark::DoNotOptimize(dispatcher.dispatch(heir, t++));
  }
  state.counters["switch_ratio"] = benchmark::Counter(
      static_cast<double>(dispatcher.context_switches()) /
      static_cast<double>(dispatcher.dispatch_count()));
}
BENCHMARK(BM_Dispatch_WindowPattern)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
