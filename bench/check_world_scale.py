#!/usr/bin/env python3
"""CI gate: assert the epoch-parallel World driver scales on multicore.

Reads a Google Benchmark JSON file containing BM_WorldScale_Lockstep/N and
BM_WorldScale_Parallel/N and fails unless, at N = 8 busy modules, the
parallel sim_ticks_per_second is at least MIN_SPEEDUP x the lockstep rate.

The parallel driver is byte-identical to lockstep by construction (see
tests/test_parallel_world.cpp); this gate checks that it is also *faster*
where it can be. On hosts without real parallelism (the JSON context's
num_cpus < 4) the speedup is physically unavailable, so the gate reports
the measured ratio and passes without enforcing it.

Usage: check_world_scale.py BENCH_world_scale.json [min_speedup] [modules]
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_speedup = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    modules = sys.argv[3] if len(sys.argv) > 3 else "8"

    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)

    num_cpus = int(data.get("context", {}).get("num_cpus", 0))

    rates = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("run_type") == "aggregate":
            continue
        for kind in ("Lockstep", "Parallel"):
            prefix = f"BM_WorldScale_{kind}/"
            if name.startswith(prefix):
                arg = name.split("/")[1]
                rate = bench.get("sim_ticks_per_second")
                if rate is not None:
                    key = (kind, arg)
                    # Keep the best repetition per (kind, module count).
                    rates[key] = max(rates.get(key, 0.0), float(rate))

    lockstep = rates.get(("Lockstep", modules))
    parallel = rates.get(("Parallel", modules))
    if lockstep is None or parallel is None:
        print(f"error: {path} lacks BM_WorldScale_Lockstep/{modules} or "
              f"BM_WorldScale_Parallel/{modules} (found: {sorted(rates)})",
              file=sys.stderr)
        return 2

    speedup = parallel / lockstep if lockstep > 0 else float("inf")
    print(f"world scale at {modules} modules (host cpus: {num_cpus}): "
          f"lockstep {lockstep:.3e}, parallel {parallel:.3e} ticks/sec "
          f"-> speedup {speedup:.2f}x (gate: >= {min_speedup}x)")
    if num_cpus < 4:
        print(f"note: only {num_cpus} cpu(s) available -- parallel speedup "
              "is physically unavailable here; gate not enforced")
        return 0
    if speedup < min_speedup:
        print("error: parallel world speedup below the gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
