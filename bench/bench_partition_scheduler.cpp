// E5 -- Partition Scheduler cost (Sect. 4.3, Algorithm 1).
//
// Paper claims: the scheduler runs at every clock tick; in the best and most
// frequent case it performs only two computations (tick increment + failed
// preemption-point comparison); mode-based schedule support adds nothing to
// that best case beyond the modulo bookkeeping.
//
// Measured here:
//   * average per-tick cost on the Fig. 8 table (7 points per 1300 ticks:
//     the no-point case dominates);
//   * per-tick cost on a pathological table with a point at every tick;
//   * ablation: Algorithm 1 vs a minimal static scheduler without
//     mode-based-schedule support (the original AIR design).
#include <benchmark/benchmark.h>

#include "config/fig8.hpp"
#include "pmk/partition_scheduler.hpp"
#include "pmk/schedule.hpp"

namespace {

using namespace air;

pmk::RuntimeSchedule fig8_runtime() {
  return pmk::compile_schedule(scenarios::fig8_chi1());
}

void BM_SchedulerTick_Fig8(benchmark::State& state) {
  pmk::PartitionScheduler scheduler;
  scheduler.add_schedule(fig8_runtime());
  scheduler.set_initial_schedule(ScheduleId{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.tick());
  }
  state.counters["preemption_point_ratio"] = benchmark::Counter(
      static_cast<double>(scheduler.preemption_points_hit()) /
      static_cast<double>(scheduler.tick_count()));
}
BENCHMARK(BM_SchedulerTick_Fig8);

void BM_SchedulerTick_EveryTickAPoint(benchmark::State& state) {
  // Worst case: a preemption point at every tick of the MTF.
  model::Schedule dense;
  dense.id = ScheduleId{0};
  dense.mtf = 64;
  dense.requirements = {{PartitionId{0}, 64, 32}, {PartitionId{1}, 64, 32}};
  for (Ticks t = 0; t < 64; ++t) {
    dense.windows.push_back(
        {PartitionId{static_cast<std::int32_t>(t % 2)}, t, 1});
  }
  pmk::PartitionScheduler scheduler;
  scheduler.add_schedule(pmk::compile_schedule(dense));
  scheduler.set_initial_schedule(ScheduleId{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.tick());
  }
  state.counters["preemption_point_ratio"] = benchmark::Counter(
      static_cast<double>(scheduler.preemption_points_hit()) /
      static_cast<double>(scheduler.tick_count()));
}
BENCHMARK(BM_SchedulerTick_EveryTickAPoint);

/// The original AIR Partition Scheduler without mode-based schedules: one
/// static table, no switch check (the ablation baseline of Sect. 4.3).
class StaticScheduler {
 public:
  explicit StaticScheduler(pmk::RuntimeSchedule schedule)
      : schedule_(std::move(schedule)) {}

  bool tick() {
    ++ticks_;
    if (schedule_.table[iterator_].tick != ticks_ % schedule_.mtf) {
      return false;
    }
    heir_ = schedule_.table[iterator_].partition;
    iterator_ = (iterator_ + 1) % schedule_.table.size();
    return true;
  }

  [[nodiscard]] PartitionId heir() const { return heir_; }

 private:
  pmk::RuntimeSchedule schedule_;
  Ticks ticks_{-1};
  std::size_t iterator_{0};
  PartitionId heir_{PartitionId::invalid()};
};

void BM_SchedulerTick_StaticBaseline(benchmark::State& state) {
  StaticScheduler scheduler(fig8_runtime());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.tick());
  }
}
BENCHMARK(BM_SchedulerTick_StaticBaseline);

void BM_SchedulerTick_WithPendingSwitch(benchmark::State& state) {
  // A pending (not yet due) switch request must not slow the common case:
  // the extra comparison only happens at preemption points.
  pmk::PartitionScheduler scheduler;
  scheduler.add_schedule(fig8_runtime());
  auto chi2 = pmk::compile_schedule(scenarios::fig8_chi2());
  scheduler.add_schedule(std::move(chi2));
  scheduler.set_initial_schedule(ScheduleId{0});
  scheduler.tick();  // move off the boundary
  (void)scheduler.request_schedule(ScheduleId{1});
  Ticks i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.tick());
    // Re-arm the request so it never completes an MTF unnoticed; cheap.
    if (++i % 1024 == 0) (void)scheduler.request_schedule(ScheduleId{1});
  }
}
BENCHMARK(BM_SchedulerTick_WithPendingSwitch);

}  // namespace
