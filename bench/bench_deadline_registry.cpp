// E7 -- deadline registry ablation (Sect. 5.3).
//
// Paper claims: with the sorted linked list, earliest-deadline retrieval
// inside the clock-tick ISR is O(1) and removal-after-violation is O(1)
// given the node pointer; a self-balancing tree would win asymptotically on
// register/update (O(log n) vs O(n)) but that happens outside the ISR and,
// at the typically small number of deadline-bearing processes, the
// asymptotic advantage "will not correlate to effective profit".
//
// Measured here over n in {4..1024}:
//   * ISR path (the Algorithm 3 check, no violation): flat for both, list
//     slightly cheaper -- the paper's choice holds;
//   * register/update: list grows linearly, tree logarithmically -- the
//     crossover justifies the paper's "typically small n" argument.
#include <benchmark/benchmark.h>

#include "pal/deadline_registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace air;

template <class Registry>
void fill(Registry& registry, std::int64_t n, util::Rng& rng) {
  for (std::int64_t i = 0; i < n; ++i) {
    registry.register_deadline(ProcessId{static_cast<std::int32_t>(i)},
                               rng.uniform(1'000'000, 2'000'000));
  }
}

template <class Registry>
void BM_IsrCheck(benchmark::State& state) {
  Registry registry;
  util::Rng rng(1);
  fill(registry, state.range(0), rng);
  // Algorithm 3's steady-state: retrieve the earliest, compare, stop.
  for (auto _ : state) {
    const pal::DeadlineRecord* earliest = registry.earliest();
    benchmark::DoNotOptimize(earliest->deadline >= 500);
  }
}
BENCHMARK_TEMPLATE(BM_IsrCheck, pal::ListDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 1024);
BENCHMARK_TEMPLATE(BM_IsrCheck, pal::TreeDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 1024);
BENCHMARK_TEMPLATE(BM_IsrCheck, pal::HeapDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 1024);

template <class Registry>
void BM_RegisterUpdate(benchmark::State& state) {
  Registry registry;
  util::Rng rng(2);
  const std::int64_t n = state.range(0);
  fill(registry, n, rng);
  // The APEX-side path: a PERIODIC_WAIT / REPLENISH re-registers a process
  // deadline at a new (random) position.
  for (auto _ : state) {
    const auto pid =
        ProcessId{static_cast<std::int32_t>(rng.uniform(0, n - 1))};
    registry.register_deadline(pid, rng.uniform(1'000'000, 2'000'000));
  }
}
BENCHMARK_TEMPLATE(BM_RegisterUpdate, pal::ListDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 1024);
BENCHMARK_TEMPLATE(BM_RegisterUpdate, pal::TreeDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 1024);
BENCHMARK_TEMPLATE(BM_RegisterUpdate, pal::HeapDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 1024);

template <class Registry>
void BM_ViolationDrain(benchmark::State& state) {
  // A batch of expired deadlines found after partition inactivity: report
  // and remove the earliest until the first future one (Algorithm 3 loop).
  const std::int64_t n = state.range(0);
  util::Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    Registry registry;
    fill(registry, n, rng);
    state.ResumeTiming();
    for (std::int64_t i = 0; i < n / 2; ++i) {
      benchmark::DoNotOptimize(registry.earliest());
      registry.remove_earliest();
    }
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK_TEMPLATE(BM_ViolationDrain, pal::ListDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 256);
BENCHMARK_TEMPLATE(BM_ViolationDrain, pal::TreeDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 256);
BENCHMARK_TEMPLATE(BM_ViolationDrain, pal::HeapDeadlineRegistry)
    ->RangeMultiplier(4)
    ->Range(4, 256);

}  // namespace
