// Telemetry overhead quantification (observability acceptance numbers).
//
// The claim to verify: full telemetry (metrics registry + flight recorder +
// tick profiler) costs <= 5% on the whole-module tick path, and disabled
// telemetry is indistinguishable from the pre-telemetry baseline (the
// registry pointer is null in every layer, so the only residual cost is a
// handful of never-taken branches). The same discipline holds for the
// causal span layer: disabled spans are a null pointer + one branch. Run
// BM_TelemetryTick_Fig8 with the configuration index to compare:
//   0  telemetry off, trace off   (seed-equivalent hot path)
//   1  metrics only, trace off
//   2  metrics + trace (unbounded vector, the seed's tracing mode)
//   3  metrics + flight recorder (bounded rings)
//   4  metrics + flight recorder + tick profiler + streaming sink
//   5  metrics + spans, trace off (span layer alone)
//   6  metrics + flight recorder + spans (span mirror feeds the rings)
//   7  metrics + online plane, trace off (windowed digests + watchdogs;
//      bench/check_online_overhead.py gates mode 7 within 10% of mode 1)
//   8  metrics + host profiler at the default sampling stride, trace off
//      (the always-on cost-attribution configuration;
//      bench/check_profiler_overhead.py gates mode 8 within 10% of mode 1)
#include <benchmark/benchmark.h>

#include "config/fig8.hpp"
#include "system/module.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/spans.hpp"
#include "util/trace.hpp"

namespace {

using namespace air;

struct NullSink final : util::TraceSink {
  std::uint64_t seen{0};
  void on_event(const util::TraceEvent&) override { ++seen; }
};

void BM_TelemetryTick_Fig8(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  options.trace_enabled = mode == 2 || mode == 3 || mode == 4 || mode == 6;
  system::ModuleConfig config = scenarios::fig8_config(options);
  config.telemetry.metrics_enabled = mode >= 1;
  config.telemetry.flight_recorder_capacity =
      mode == 3 || mode == 4 || mode == 6 ? 4096 : 0;
  config.telemetry.profiler_enabled = mode == 4 || mode == 8;
  config.telemetry.spans_enabled = mode == 5 || mode == 6;
  config.telemetry.spans_capacity = mode == 5 || mode == 6 ? 4096 : 0;
  config.telemetry.online.enabled = mode == 7;

  system::Module module(std::move(config));
  NullSink sink;
  if (mode == 4) module.add_trace_sink(&sink);

  for (auto _ : state) {
    module.tick_once();
  }
  state.counters["sim_ticks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (mode == 5 || mode == 6) {
    state.counters["spans_recorded"] = benchmark::Counter(
        static_cast<double>(module.spans().recorded_spans()));
  }
  if (mode == 7 && module.online() != nullptr) {
    state.counters["windows_closed"] = benchmark::Counter(
        static_cast<double>(module.online()->windows_closed()));
  }
  if (mode == 4 || mode == 8) {
    state.counters["sampled_ticks"] = benchmark::Counter(
        static_cast<double>(module.profiler().ticks()));
  }
  if (mode == 4) module.remove_trace_sink(&sink);
}
BENCHMARK(BM_TelemetryTick_Fig8)->DenseRange(0, 8);

// Microcosts: one registry operation, enabled vs disabled, and one
// snapshot of a populated registry.
void BM_MetricsAdd(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  registry.enable(state.range(0) != 0);
  std::int32_t i = 0;
  for (auto _ : state) {
    registry.add(telemetry::Metric::kIpcMessages, i & 7);
    ++i;
  }
}
BENCHMARK(BM_MetricsAdd)->Arg(0)->Arg(1);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  std::int64_t v = 0;
  for (auto _ : state) {
    registry.observe(telemetry::Metric::kDeadlineSlack, 0, v & 1023);
    ++v;
  }
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_MetricsSnapshot(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  for (std::int32_t p = 0; p < 8; ++p) {
    for (std::int64_t v = 0; v < 64; ++v) {
      registry.add(telemetry::Metric::kIpcMessages, p);
      registry.observe(telemetry::Metric::kDeadlineSlack, p, v);
      registry.set(telemetry::Metric::kReadyQueueDepth, p, v & 7);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.snapshot(1000));
  }
}
BENCHMARK(BM_MetricsSnapshot);

// Span open/close cost, enabled vs disabled: disabled must be one branch.
void BM_SpanBeginEnd(benchmark::State& state) {
  telemetry::SpanRecorder spans;
  spans.enable(state.range(0) != 0);
  spans.set_capacity(4096);
  Ticks t = 0;
  for (auto _ : state) {
    const telemetry::SpanId id =
        spans.begin(telemetry::SpanKind::kJob, t, 0, 0, 1, 2, t + 10);
    spans.end(id, t + 1);
    ++t;
  }
}
BENCHMARK(BM_SpanBeginEnd)->Arg(0)->Arg(1);

// Trace record cost: unbounded vector vs flight-recorder rings (the ring
// stays O(1) memory; the vector reallocates and grows without bound).
void BM_TraceRecord(benchmark::State& state) {
  util::Trace trace;
  if (state.range(0) != 0) trace.set_flight_recorder(4096);
  Ticks t = 0;
  for (auto _ : state) {
    trace.record(t++, util::EventKind::kProcessStateChange, 1, 2, 3);
  }
}
BENCHMARK(BM_TraceRecord)->Arg(0)->Arg(1);

}  // namespace
