// Related-work ablation: two-level TSP scheduling vs single-level priority
// scheduling.
//
// The paper's related work cites analyses proposing to abandon two-level
// scheduling in favour of a single-level priority-preemptive scheme
// (Audsley & Wellings). This bench shows the robustness argument for TSP:
// put the same four "functions" on one machine, inject a runaway process
// into one of them, and count who suffers.
//
//   * TSP (two levels): the runaway can only burn its own partition's
//     windows -- every other function keeps its response times.
//   * Flat (one level, all processes in one RT kernel): the runaway at
//     high priority starves every lower-priority function on the machine.
//
// Counters report completions per function per kilotick, healthy vs with
// the fault.
#include <benchmark/benchmark.h>

#include "pos/rt_kernel.hpp"
#include "system/module.hpp"

namespace {

using namespace air;
using pos::ScriptBuilder;

// Four functions: period 100, compute 15 each; the runaway computes forever
// at priority 5 (higher than everyone).
constexpr int kFunctions = 4;

system::ModuleConfig tsp_config(bool with_runaway) {
  system::ModuleConfig config;
  config.trace_enabled = false;
  model::Schedule s;
  s.id = ScheduleId{0};
  s.mtf = 100;
  for (int i = 0; i < kFunctions; ++i) {
    system::PartitionConfig p;
    p.name = "F" + std::to_string(i);
    system::ProcessConfig process;
    process.attrs.name = "work";
    process.attrs.period = 100;
    process.attrs.time_capacity = kInfiniteTime;
    process.attrs.priority = 10;
    process.attrs.script =
        ScriptBuilder{}.compute(15).log("done").periodic_wait().build();
    p.processes.push_back(std::move(process));
    if (with_runaway && i == 0) {
      system::ProcessConfig runaway;
      runaway.attrs.name = "runaway";
      runaway.attrs.priority = 5;
      runaway.attrs.script = ScriptBuilder{}.compute(1 << 30).build();
      p.processes.push_back(std::move(runaway));
    }
    config.partitions.push_back(std::move(p));
    s.requirements.push_back({PartitionId{i}, 100, 25});
    s.windows.push_back({PartitionId{i}, i * 25, 25});
  }
  config.schedules = {s};
  return config;
}

void BM_Tsp(benchmark::State& state) {
  const bool with_runaway = state.range(0) != 0;
  double victim_completions = 0;
  double others_completions = 0;
  double kiloticks = 0;
  for (auto _ : state) {
    state.PauseTiming();
    system::Module module(tsp_config(with_runaway));
    state.ResumeTiming();
    module.run(5000);
    state.PauseTiming();
    victim_completions +=
        static_cast<double>(module.console(PartitionId{0}).size());
    for (int i = 1; i < kFunctions; ++i) {
      others_completions +=
          static_cast<double>(module.console(PartitionId{i}).size());
    }
    kiloticks += 5.0;
    state.ResumeTiming();
  }
  state.counters["victim_per_kt"] =
      benchmark::Counter(victim_completions / kiloticks);
  state.counters["others_per_kt"] = benchmark::Counter(
      others_completions / (kiloticks * (kFunctions - 1)));
}
BENCHMARK(BM_Tsp)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Flat single-level scheduling: every function's process in ONE kernel, no
/// partitions. A minimal executive drives it directly.
void BM_Flat(benchmark::State& state) {
  const bool with_runaway = state.range(0) != 0;
  double victim_completions = 0;
  double others_completions = 0;
  double kiloticks = 0;

  for (auto _ : state) {
    state.PauseTiming();
    pos::RtKernel kernel;
    struct Proc {
      ProcessId pid;
      Ticks remaining{0};
      std::int64_t completions{0};
    };
    std::vector<Proc> procs;
    for (int i = 0; i < kFunctions; ++i) {
      pos::ProcessAttributes attrs;
      attrs.name = "work" + std::to_string(i);
      attrs.priority = 10;
      attrs.period = 100;
      const ProcessId pid = kernel.create_process(std::move(attrs));
      kernel.make_ready(pid);
      procs.push_back({pid, 15, 0});
    }
    ProcessId runaway_pid = ProcessId::invalid();
    if (with_runaway) {
      pos::ProcessAttributes attrs;
      attrs.name = "runaway";
      attrs.priority = 5;  // outranks everyone on the flat machine
      runaway_pid = kernel.create_process(std::move(attrs));
      kernel.make_ready(runaway_pid);
    }
    state.ResumeTiming();

    for (Ticks t = 0; t < 5000; ++t) {
      kernel.tick_announce(t, 1);
      const ProcessId pid = kernel.schedule();
      if (!pid.valid()) continue;
      if (pid == runaway_pid) continue;  // burns the tick forever
      for (auto& proc : procs) {
        if (proc.pid != pid) continue;
        if (--proc.remaining == 0) {
          ++proc.completions;
          // Completed: wait for the next period boundary.
          const Ticks next = ((t / 100) + 1) * 100;
          proc.remaining = 15;
          kernel.block(pid, pos::WaitReason::kNextRelease, next);
        }
        break;
      }
    }

    state.PauseTiming();
    victim_completions += static_cast<double>(procs[0].completions);
    for (int i = 1; i < kFunctions; ++i) {
      others_completions += static_cast<double>(procs[i].completions);
    }
    kiloticks += 5.0;
    state.ResumeTiming();
  }
  state.counters["victim_per_kt"] =
      benchmark::Counter(victim_completions / kiloticks);
  state.counters["others_per_kt"] = benchmark::Counter(
      others_completions / (kiloticks * (kFunctions - 1)));
}
BENCHMARK(BM_Flat)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
