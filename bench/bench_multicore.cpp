// Multicore ablation (future work iv): the same partition workload on one
// core vs two, measuring completed activations per simulated kilotick and
// the per-tick simulation cost as core count grows.
#include <benchmark/benchmark.h>

#include "system/module.hpp"

namespace {

using namespace air;
using pos::ScriptBuilder;

system::PartitionConfig worker(std::string name, Ticks compute) {
  system::PartitionConfig p;
  p.name = std::move(name);
  system::ProcessConfig process;
  process.attrs.name = "work";
  process.attrs.period = 100;
  process.attrs.time_capacity = kInfiniteTime;
  process.attrs.priority = 10;
  process.attrs.script =
      ScriptBuilder{}.compute(compute).log("x").periodic_wait().build();
  p.processes.push_back(std::move(process));
  return p;
}

model::Schedule round_robin(ScheduleId id, const std::vector<PartitionId>& ps,
                            Ticks slice) {
  model::Schedule s;
  s.id = id;
  s.mtf = static_cast<Ticks>(ps.size()) * slice;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    s.requirements.push_back({ps[i], s.mtf, slice});
    s.windows.push_back({ps[i], static_cast<Ticks>(i) * slice, slice});
  }
  return s;
}

void BM_Completions(benchmark::State& state) {
  // 4 partitions x compute(40)/period(100): demand 160/100 -- infeasible on
  // one core, feasible on two. Counter reports completed activations per
  // 1000 simulated ticks; expected ~2x with the second core (shape claim).
  const int cores = static_cast<int>(state.range(0));
  double completions = 0;
  double kiloticks = 0;
  for (auto _ : state) {
    state.PauseTiming();
    system::ModuleConfig config;
    config.trace_enabled = false;
    for (const char* name : {"A", "B", "C", "D"}) {
      config.partitions.push_back(worker(name, 40));
    }
    if (cores == 1) {
      config.cores.push_back(
          {{round_robin(ScheduleId{0},
                        {PartitionId{0}, PartitionId{1}, PartitionId{2},
                         PartitionId{3}},
                        25)},
           ScheduleId{0}});
    } else {
      config.cores.push_back(
          {{round_robin(ScheduleId{0}, {PartitionId{0}, PartitionId{1}}, 50)},
           ScheduleId{0}});
      config.cores.push_back(
          {{round_robin(ScheduleId{1}, {PartitionId{2}, PartitionId{3}}, 50)},
           ScheduleId{1}});
    }
    system::Module module(std::move(config));
    state.ResumeTiming();
    module.run(5000);
    state.PauseTiming();
    for (int p = 0; p < 4; ++p) {
      completions += static_cast<double>(module.console(PartitionId{p}).size());
    }
    kiloticks += 5.0;
    state.ResumeTiming();
  }
  state.counters["completions_per_kilotick"] =
      benchmark::Counter(completions / kiloticks);
}
BENCHMARK(BM_Completions)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_TickCostVsCores(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  system::ModuleConfig config;
  config.trace_enabled = false;
  std::vector<std::vector<PartitionId>> per_core(
      static_cast<std::size_t>(cores));
  for (int p = 0; p < 2 * cores; ++p) {
    config.partitions.push_back(worker("P" + std::to_string(p), 40));
    per_core[static_cast<std::size_t>(p % cores)].push_back(PartitionId{p});
  }
  for (int c = 0; c < cores; ++c) {
    config.cores.push_back(
        {{round_robin(ScheduleId{c}, per_core[static_cast<std::size_t>(c)],
                      50)},
         ScheduleId{c}});
  }
  system::Module module(std::move(config));
  for (auto _ : state) {
    module.tick_once();
  }
}
BENCHMARK(BM_TickCostVsCores)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
