// E12 -- offline verification & integration aids (Sect. 3, future work).
//
// Measured: cost of validating a PST against eqs. (20)-(23), of generating
// a PST by EDF construction, and of the process-level response-time
// analysis, each as a function of the number of partitions. These tools run
// at integration time, but their scalability determines how large a design
// space an integrator can explore.
#include <benchmark/benchmark.h>

#include "model/batch.hpp"
#include "model/generator.hpp"
#include "model/schedulability.hpp"
#include "model/validation.hpp"
#include "util/rng.hpp"

namespace {

using namespace air;

std::vector<model::ScheduleRequirement> make_requirements(int partitions,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  static constexpr Ticks kPeriods[] = {100, 200, 400, 800};
  std::vector<model::ScheduleRequirement> reqs;
  double budget = 0.9;
  for (int p = 0; p < partitions; ++p) {
    const Ticks period =
        kPeriods[static_cast<std::size_t>(rng.uniform(0, 3))];
    const double share = budget / static_cast<double>(partitions - p) *
                         (0.5 + rng.uniform01() * 0.5);
    const Ticks duration = std::max<Ticks>(
        1, static_cast<Ticks>(share * static_cast<double>(period)));
    budget -= static_cast<double>(duration) / static_cast<double>(period);
    reqs.push_back({PartitionId{p}, period, duration});
  }
  return reqs;
}

void BM_GenerateSchedule(benchmark::State& state) {
  const auto reqs =
      make_requirements(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    model::GeneratorInput input;
    input.requirements = reqs;
    benchmark::DoNotOptimize(model::generate_schedule(input));
  }
}
BENCHMARK(BM_GenerateSchedule)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ValidateSchedule(benchmark::State& state) {
  model::GeneratorInput input;
  input.requirements =
      make_requirements(static_cast<int>(state.range(0)), 43);
  const auto schedule = model::generate_schedule(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::validate_schedule(*schedule));
  }
}
BENCHMARK(BM_ValidateSchedule)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SupplyFunctionConstruction(benchmark::State& state) {
  model::GeneratorInput input;
  input.requirements =
      make_requirements(static_cast<int>(state.range(0)), 44);
  const auto schedule = model::generate_schedule(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::PartitionSupply(*schedule, PartitionId{0}));
  }
}
BENCHMARK(BM_SupplyFunctionConstruction)->Arg(2)->Arg(8);

void BM_ResponseTimeAnalysis(benchmark::State& state) {
  model::GeneratorInput input;
  input.requirements = make_requirements(8, 45);
  const auto schedule = model::generate_schedule(input);
  model::PartitionModel partition;
  partition.id = PartitionId{0};
  const int processes = static_cast<int>(state.range(0));
  util::Rng rng(46);
  for (int q = 0; q < processes; ++q) {
    partition.processes.push_back(
        {"p" + std::to_string(q), 100 * (1 + rng.uniform(0, 3)),
         kInfiniteTime, 10 + q, 1 + rng.uniform(0, 3), true});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::analyze_partition(*schedule, partition,
                                 model::Phasing::kMtfAligned));
  }
}
BENCHMARK(BM_ResponseTimeAnalysis)->Arg(2)->Arg(8)->Arg(32);

// --- the schedulability service (src/model/batch.hpp) ---
//
// Baseline vs service over the same generated candidate stream. The
// baseline is the pre-service workflow: every candidate analysed in
// isolation (no supply-table memoisation, one at a time). The service runs
// the batch pipeline with the interned supply cache and the worker pool
// (one lane per hardware thread). check_schedulability.py gates the
// configs_per_second ratio and the cache hit rate.

model::CandidateSpec bench_spec(std::int64_t count) {
  model::CandidateSpec spec;
  spec.count = static_cast<std::size_t>(count);
  spec.seed = 42;
  return spec;
}

void BM_BatchAnalyze_Baseline(benchmark::State& state) {
  const auto candidates = model::generate_candidates(bench_spec(state.range(0)));
  for (auto _ : state) {
    model::BatchOptions options;
    options.workers = 1;
    options.memoise = false;
    model::BatchAnalyzer analyzer(options);
    benchmark::DoNotOptimize(analyzer.analyze(candidates));
  }
  state.counters["configs_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(candidates.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchAnalyze_Baseline)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BatchAnalyze_Service(benchmark::State& state) {
  const auto candidates = model::generate_candidates(bench_spec(state.range(0)));
  double hit_rate = 0.0;
  for (auto _ : state) {
    model::BatchOptions options;
    options.workers = 0;  // one lane per hardware thread
    model::BatchAnalyzer analyzer(options);
    benchmark::DoNotOptimize(analyzer.analyze(candidates));
    const auto& cache = analyzer.stats().cache;
    hit_rate = cache.lookups > 0 ? static_cast<double>(cache.hits) /
                                       static_cast<double>(cache.lookups)
                                 : 0.0;
  }
  state.counters["configs_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(candidates.size()),
      benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] = hit_rate;
}
BENCHMARK(BM_BatchAnalyze_Service)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
