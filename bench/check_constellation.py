#!/usr/bin/env python3
"""CI gate: assert the switched topology pays off at constellation scale.

Reads a Google Benchmark JSON file containing BM_Constellation_Switched/N
and BM_Constellation_Flat/N and fails unless, at N = 1000 modules:

  1. switched modules_per_second >= MIN_RATIO x the flat rate (the
     hierarchical switched data plane must beat the naive flat broadcast
     by a wide margin, not a rounding error), and
  2. switched modules_per_second >= MIN_FLOOR absolute (a ratio can also
     be met by making the strawman slower; the floor pins the real rate).

The ratio is the paper-facing figure: per-switch TDMA cycles drain beacon
bursts in ~10 ticks and let the epoch driver warp the quiet gaps, while the
flat 2 * N-tick cycle never drains and pins every module to propagation-
length epochs (bench_constellation.cpp, DESIGN.md §13).

Usage: check_constellation.py BENCH_constellation.json
                              [min_ratio] [min_floor] [modules]
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_ratio = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    min_floor = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0e6
    modules = sys.argv[4] if len(sys.argv) > 4 else "1000"

    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)

    rates = {}
    epochs = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("run_type") == "aggregate":
            continue
        for kind in ("Switched", "Flat"):
            prefix = f"BM_Constellation_{kind}/"
            if name.startswith(prefix):
                arg = name.split("/")[1]
                rate = bench.get("modules_per_second")
                if rate is not None:
                    key = (kind, arg)
                    # Keep the best repetition per (kind, module count).
                    if float(rate) > rates.get(key, 0.0):
                        rates[key] = float(rate)
                        epochs[key] = float(bench.get("mean_epoch_ticks", 0.0))

    switched = rates.get(("Switched", modules))
    flat = rates.get(("Flat", modules))
    if switched is None or flat is None:
        print(f"error: {path} lacks BM_Constellation_Switched/{modules} or "
              f"BM_Constellation_Flat/{modules} (found: {sorted(rates)})",
              file=sys.stderr)
        return 2

    ratio = switched / flat if flat > 0 else float("inf")
    print(f"constellation at {modules} modules: "
          f"switched {switched:.3e} (mean epoch "
          f"{epochs.get(('Switched', modules), 0):.1f} ticks), "
          f"flat {flat:.3e} (mean epoch "
          f"{epochs.get(('Flat', modules), 0):.1f} ticks) module-ticks/sec "
          f"-> ratio {ratio:.2f}x (gate: >= {min_ratio}x, "
          f"floor {min_floor:.1e})")
    if ratio < min_ratio:
        print("error: switched/flat modules_per_second ratio below the gate",
              file=sys.stderr)
        return 1
    if switched < min_floor:
        print("error: switched modules_per_second below the absolute floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
