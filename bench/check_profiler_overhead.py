#!/usr/bin/env python3
"""CI gate: the always-on host profiler must stay cheap.

Reads a Google Benchmark JSON file containing BM_TelemetryTick_Fig8/1
(metrics only) and BM_TelemetryTick_Fig8/8 (metrics + hierarchical host
profiler at the default sampling stride) and fails unless the mode-8
sim_ticks_per_second is at least MIN_RATIO of the mode-1 rate
(default 0.90, i.e. stride sampling amortises the clock reads to at most
10% of the tick -- the DESIGN.md section 12 contract).

Usage: check_profiler_overhead.py BENCH_telemetry.json [min_ratio]
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_ratio = float(sys.argv[2]) if len(sys.argv) > 2 else 0.90

    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)

    rates = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_TelemetryTick_Fig8/"):
            continue
        if bench.get("run_type") == "aggregate":
            continue
        arg = name.split("/")[1]
        rate = bench.get("sim_ticks_per_second")
        if rate is not None:
            # Keep the best repetition per arg (minimum-noise estimate).
            rates[arg] = max(rates.get(arg, 0.0), float(rate))

    if "1" not in rates or "8" not in rates:
        print(f"error: {path} lacks BM_TelemetryTick_Fig8/1 and /8 "
              f"(found: {sorted(rates)})", file=sys.stderr)
        return 2

    base, profiled = rates["1"], rates["8"]
    ratio = profiled / base if base > 0 else float("inf")
    print(f"telemetry tick rate: metrics-only {base:.3e}, +host profiler "
          f"{profiled:.3e} -> ratio {ratio:.3f} (gate: >= {min_ratio})")
    if ratio < min_ratio:
        print("error: host profiler overhead above the gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
