// E10 -- interpartition communication (Sect. 2.1).
//
// Local partitions communicate by PMK memory-to-memory copies; remote ones
// through the simulated TDMA bus, behind the same APEX services. Measured:
//   * sampling write+propagate and read costs vs message size;
//   * queuing send+pump+receive round trip;
//   * local vs remote delivery latency (counters, in ticks);
//   * bus throughput under TDMA slotting.
#include <benchmark/benchmark.h>

#include "ipc/ports.hpp"
#include "ipc/router.hpp"
#include "net/bus.hpp"

namespace {

using namespace air;

struct LocalFixture {
  LocalFixture()
      : src("OUT", ipc::PortDirection::kSource, 4096, 16),
        dst("IN", ipc::PortDirection::kDestination, 4096, 16),
        s_src("SOUT", ipc::PortDirection::kSource, 4096, kInfiniteTime),
        s_dst("SIN", ipc::PortDirection::kDestination, 4096, kInfiniteTime) {
    router.add_queuing_port(PartitionId{0}, &src);
    router.add_queuing_port(PartitionId{1}, &dst);
    router.add_sampling_port(PartitionId{0}, &s_src);
    router.add_sampling_port(PartitionId{1}, &s_dst);
    ipc::ChannelConfig queuing;
    queuing.id = ChannelId{0};
    queuing.kind = ipc::ChannelKind::kQueuing;
    queuing.source = {PartitionId{0}, "OUT"};
    queuing.local_destinations = {{PartitionId{1}, "IN"}};
    router.add_channel(queuing);
    ipc::ChannelConfig sampling;
    sampling.id = ChannelId{1};
    sampling.kind = ipc::ChannelKind::kSampling;
    sampling.source = {PartitionId{0}, "SOUT"};
    sampling.local_destinations = {{PartitionId{1}, "SIN"}};
    router.add_channel(sampling);
  }

  ipc::Router router;
  ipc::QueuingPort src, dst;
  ipc::SamplingPort s_src, s_dst;
};

void BM_SamplingWritePropagate(benchmark::State& state) {
  LocalFixture fx;
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  Ticks now = 0;
  for (auto _ : state) {
    ipc::Message m{payload, ++now, PartitionId{0}};
    benchmark::DoNotOptimize(fx.s_src.write(m));
    fx.router.propagate_sampling({PartitionId{0}, "SOUT"}, m);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SamplingWritePropagate)->Arg(16)->Arg(256)->Arg(4096);

void BM_SamplingRead(benchmark::State& state) {
  LocalFixture fx;
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  ipc::Message m{payload, 0, PartitionId{0}};
  fx.router.propagate_sampling({PartitionId{0}, "SOUT"}, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.s_dst.read(100));
  }
}
BENCHMARK(BM_SamplingRead)->Arg(16)->Arg(4096);

void BM_QueuingRoundTrip(benchmark::State& state) {
  LocalFixture fx;
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  Ticks now = 0;
  for (auto _ : state) {
    (void)fx.src.send({payload, ++now, PartitionId{0}});
    fx.router.pump({PartitionId{0}, "OUT"});
    benchmark::DoNotOptimize(fx.dst.receive());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueuingRoundTrip)->Arg(16)->Arg(256)->Arg(4096);

void BM_PumpAllIdleChannels(benchmark::State& state) {
  // The PMK runs pump_all() every tick; with idle channels it must be
  // nearly free.
  LocalFixture fx;
  for (auto _ : state) {
    fx.router.pump_all();
  }
}
BENCHMARK(BM_PumpAllIdleChannels);

void BM_BusThroughput(benchmark::State& state) {
  net::Bus bus({.slot_length = 1,
                .frames_per_slot = static_cast<std::size_t>(state.range(0)),
                .propagation_delay = 1});
  std::size_t delivered = 0;
  bus.attach(ModuleId{0}, [&](PartitionId, const std::string&,
                              const ipc::Message&,
                              ipc::ChannelKind) { ++delivered; });
  Ticks now = 0;
  const ipc::Message m{"frame", 0, PartitionId{0}};
  for (auto _ : state) {
    bus.send(ModuleId{0}, {ModuleId{0}, PartitionId{0}, "P"}, m,
             ipc::ChannelKind::kQueuing, now);
    bus.tick(now);
    ++now;
  }
  state.counters["frames_per_tick"] = benchmark::Counter(
      static_cast<double>(delivered) / static_cast<double>(now));
}
BENCHMARK(BM_BusThroughput)->Arg(1)->Arg(4)->Arg(16);

void BM_RemoteDeliveryLatency(benchmark::State& state) {
  // One frame, measured in bus ticks from send to delivery under TDMA with
  // the sender owning every `modules`-th slot.
  const int modules = static_cast<int>(state.range(0));
  double latency = 0;
  for (auto _ : state) {
    net::Bus bus({.slot_length = 10, .frames_per_slot = 1,
                  .propagation_delay = 2});
    Ticks now = 0;
    Ticks delivered_at = -1;
    bus.attach(ModuleId{0},
               [&](PartitionId, const std::string&, const ipc::Message&,
                   ipc::ChannelKind) { delivered_at = now; });
    for (int m = 1; m < modules; ++m) {
      bus.attach(ModuleId{m}, [](PartitionId, const std::string&,
                                 const ipc::Message&, ipc::ChannelKind) {});
    }
    // The last module sends at t=0 but only transmits during its own TDMA
    // slot: delivery waits (modules-1) slots plus propagation.
    const ipc::Message msg{"x", 0, PartitionId{0}};
    bus.send(ModuleId{modules - 1}, {ModuleId{0}, PartitionId{0}, "P"}, msg,
             ipc::ChannelKind::kQueuing, 0);
    while (delivered_at < 0 && now < 10'000) {
      bus.tick(now);
      ++now;
    }
    latency = static_cast<double>(delivered_at);
  }
  state.counters["delivery_latency_ticks"] = benchmark::Counter(latency);
}
BENCHMARK(BM_RemoteDeliveryLatency)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
