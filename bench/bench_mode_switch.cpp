// E4 -- mode-based schedule switching, measured (Sect. 4).
//
// Reports:
//   * the cost of the SET_MODULE_SCHEDULE service itself (paper: "the
//     immediate result is only that of storing the identifier" -- it must
//     be trivially cheap);
//   * switch_effect_latency: ticks from request to the switch becoming
//     effective, as a function of where in the MTF the request lands
//     (expected: distance to the next MTF boundary, mean ~MTF/2);
//   * the end-to-end rate of a module that alternates schedules every MTF.
#include <benchmark/benchmark.h>

#include "config/fig8.hpp"
#include "system/module.hpp"

namespace {

using namespace air;

void BM_SetModuleScheduleService(benchmark::State& state) {
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  options.trace_enabled = false;
  system::Module module(scenarios::fig8_config(options));
  auto& apex = module.apex(module.partition_id("AOCS"));
  std::int32_t flip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apex.set_module_schedule(ScheduleId{flip ^= 1}));
  }
}
BENCHMARK(BM_SetModuleScheduleService);

void BM_SwitchEffectLatency(benchmark::State& state) {
  // Request at a fixed offset within the MTF; measure ticks until the
  // switch takes effect. Deterministic: latency = MTF - offset.
  const Ticks offset = state.range(0);
  double latency = 0;
  for (auto _ : state) {
    state.PauseTiming();
    scenarios::Fig8Options options;
    options.with_faulty_process = false;
    system::Module module(scenarios::fig8_config(options));
    auto& apex = module.apex(module.partition_id("AOCS"));
    module.run(offset);
    (void)apex.set_module_schedule(ScheduleId{1});
    const Ticks requested_at = module.now();
    state.ResumeTiming();
    module.run_until(requested_at + 2 * scenarios::kFig8Mtf);
    state.PauseTiming();
    const auto switches =
        module.trace().filtered(util::EventKind::kScheduleSwitch);
    if (!switches.empty()) {
      latency = static_cast<double>(switches[0].time - requested_at);
    }
    state.ResumeTiming();
  }
  state.counters["switch_effect_latency"] = benchmark::Counter(latency);
}
BENCHMARK(BM_SwitchEffectLatency)
    ->Arg(1)
    ->Arg(325)
    ->Arg(650)
    ->Arg(1299)
    ->Unit(benchmark::kMillisecond);

void BM_AlternatingSchedules(benchmark::State& state) {
  // A module that flips between chi_1 and chi_2 at every MTF: measures the
  // whole-system overhead of continuous mode changes.
  scenarios::Fig8Options options;
  options.with_faulty_process = false;
  options.trace_enabled = false;
  system::Module module(scenarios::fig8_config(options));
  auto& apex = module.apex(module.partition_id("AOCS"));
  std::int32_t flip = 0;
  for (auto _ : state) {
    (void)apex.set_module_schedule(ScheduleId{flip ^= 1});
    module.run(scenarios::kFig8Mtf);
  }
  state.counters["ticks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 1300.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AlternatingSchedules)->Unit(benchmark::kMillisecond);

}  // namespace
