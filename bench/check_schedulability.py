#!/usr/bin/env python3
"""CI gate: assert the schedulability service pays for itself.

Reads a Google Benchmark JSON file containing BM_BatchAnalyze_Baseline/N
and BM_BatchAnalyze_Service/N and fails unless, at N = 256 candidates:

  1. service configs_per_second >= MIN_RATIO x the baseline rate. The
     baseline is the pre-service workflow -- every candidate analysed in
     isolation, rebuilding its PartitionSupply sbf tables (the O(MTF^2)
     dominant cost) from scratch. The service memoises those tables by
     canonical window set and fans analyses over the worker pool; on a
     single-core runner the whole ratio must come from memoisation, which
     is why the floor is a property of the candidate stream (distinct
     PSTs ~= count / 8), not of the machine.
  2. service configs_per_second >= MIN_FLOOR absolute (a ratio can also be
     met by slowing the strawman; the floor pins the real rate).
  3. service cache_hit_rate >= MIN_HIT_RATE (sanity: the stream actually
     exercised the supply cache; a broken canonical key silently degrades
     to miss-every-time and shows up here before it shows up in wall time).

Usage: check_schedulability.py BENCH_schedulability.json
                               [min_ratio] [min_floor] [min_hit_rate]
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_ratio = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    min_floor = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0e3
    min_hit_rate = float(sys.argv[4]) if len(sys.argv) > 4 else 0.6

    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)

    rates = {}
    hit_rate = None
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        for kind in ("Baseline", "Service"):
            if name.startswith(f"BM_BatchAnalyze_{kind}/"):
                rate = bench.get("configs_per_second")
                if rate is not None:
                    rates[kind] = max(rates.get(kind, 0.0), rate)
                if kind == "Service" and "cache_hit_rate" in bench:
                    hit_rate = bench["cache_hit_rate"]

    missing = [k for k in ("Baseline", "Service") if k not in rates]
    if missing:
        print(f"FAIL: no configs_per_second for {missing} in {path}",
              file=sys.stderr)
        return 1
    if hit_rate is None:
        print(f"FAIL: no cache_hit_rate on BM_BatchAnalyze_Service in {path}",
              file=sys.stderr)
        return 1

    ratio = rates["Service"] / rates["Baseline"]
    print(f"schedulability service: {rates['Service']:.0f} configs/s vs "
          f"baseline {rates['Baseline']:.0f} configs/s "
          f"(ratio {ratio:.2f}x, cache hit rate {hit_rate:.3f})")

    ok = True
    if ratio < min_ratio:
        print(f"FAIL: service/baseline ratio {ratio:.2f} < {min_ratio}",
              file=sys.stderr)
        ok = False
    if rates["Service"] < min_floor:
        print(f"FAIL: service rate {rates['Service']:.0f} configs/s < "
              f"floor {min_floor:.0f}", file=sys.stderr)
        ok = False
    if hit_rate < min_hit_rate:
        print(f"FAIL: cache hit rate {hit_rate:.3f} < {min_hit_rate}",
              file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
