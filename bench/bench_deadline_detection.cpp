// E3 -- process deadline violation monitoring, measured (Sect. 5, Sect. 6).
//
// Reports, as counters over a long Fig. 8 run with the fault injected:
//   * detection_latency: ticks from deadline expiry to detection. The
//     paper's methodology is optimal w.r.t. detection latency *under TSP*:
//     a violation occurring while the partition is inactive can only be
//     detected at its next dispatch, so the expected latency here is the
//     distance from the deadline (offset 205 of the MTF) to the next P1
//     window (offset 1300) = 1095 ticks.
//   * pal_checks_per_announce: Algorithm 3 examines only the earliest
//     deadline unless violations cascade (expected ~1).
// Plus micro-benchmarks of the announce path itself.
#include <benchmark/benchmark.h>

#include <memory>

#include "config/fig8.hpp"
#include "pal/pal.hpp"
#include "pos/rt_kernel.hpp"
#include "system/module.hpp"

namespace {

using namespace air;

void BM_DetectionLatency_Fig8(benchmark::State& state) {
  double latency_sum = 0;
  double latency_count = 0;
  double checks = 0;
  double announces = 0;
  for (auto _ : state) {
    state.PauseTiming();
    system::Module module(scenarios::fig8_config());
    const PartitionId p1 = module.partition_id("AOCS");
    module.start_process_by_name(p1, scenarios::kFaultyProcessName);
    state.ResumeTiming();
    module.run(20 * scenarios::kFig8Mtf);
    state.PauseTiming();
    for (const auto& event :
         module.trace().filtered(util::EventKind::kDeadlineMiss)) {
      latency_sum += static_cast<double>(event.time - event.c);
      latency_count += 1;
    }
    checks += static_cast<double>(module.pal(p1).deadline_checks());
    announces += 20.0 * 1300.0 * (200.0 / 1300.0);  // P1 announce ticks
    state.ResumeTiming();
  }
  state.counters["detection_latency"] =
      benchmark::Counter(latency_count > 0 ? latency_sum / latency_count : 0);
  state.counters["pal_checks_per_announce"] =
      benchmark::Counter(announces > 0 ? checks / announces : 0);
}
BENCHMARK(BM_DetectionLatency_Fig8)->Unit(benchmark::kMillisecond);

void BM_Announce_NoDeadlines(benchmark::State& state) {
  pal::Pal pal(std::make_unique<pos::RtKernel>());
  Ticks now = 0;
  for (auto _ : state) {
    pal.announce_ticks(++now, 1);
  }
}
BENCHMARK(BM_Announce_NoDeadlines);

void BM_Announce_FutureDeadlines(benchmark::State& state) {
  // The common healthy case: n registered deadlines, none violated; the
  // check touches only the earliest (O(1) regardless of n).
  pal::Pal pal(std::make_unique<pos::RtKernel>());
  const std::int64_t n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    pal.register_deadline(ProcessId{static_cast<std::int32_t>(i)},
                          1'000'000'000 + i);
  }
  Ticks now = 0;
  for (auto _ : state) {
    pal.announce_ticks(++now, 1);
  }
}
BENCHMARK(BM_Announce_FutureDeadlines)->Arg(1)->Arg(16)->Arg(256);

void BM_Announce_WithViolation(benchmark::State& state) {
  // Violation path: one expired deadline to report and remove per announce.
  pal::Pal pal(std::make_unique<pos::RtKernel>());
  pal.on_deadline_violation = [](ProcessId, Ticks, Ticks) {};
  Ticks now = 1'000;
  std::int32_t pid = 0;
  for (auto _ : state) {
    state.PauseTiming();
    pal.register_deadline(ProcessId{pid++ % 1024}, now - 1);
    state.ResumeTiming();
    pal.announce_ticks(++now, 1);
  }
}
BENCHMARK(BM_Announce_WithViolation);

}  // namespace
