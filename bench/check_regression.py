#!/usr/bin/env python3
"""CI gate: compare fresh Release bench JSONs against checked-in baselines.

For every BENCH_*.json baseline in the baseline directory, loads the
same-named file from the fresh directory and compares each benchmark's
cpu_time by name. A benchmark regresses when its fresh cpu_time exceeds
baseline * (1 + tolerance); missing benchmarks and missing files fail too
(a silently-dropped benchmark is not an improvement).

Both documents must carry the "cmake_build_type": "Release" stamp written
by bench/run_benches.sh -- comparing a debug run against a Release baseline
(or vice versa) produces noise, not a verdict (DESIGN.md §11).

Usage: check_regression.py --baseline-dir DIR --fresh-dir DIR
                           [--tolerance 0.10]
                           [--tolerance-for BENCH_NAME=0.25 ...]

Per-benchmark overrides (--tolerance-for) exist for benchmarks whose inner
loop is microseconds-long and scheduler-noise-bound; the default tolerance
covers the rest. New benchmarks present only in the fresh run pass (they
have no baseline yet); improvements always pass.

On every run (pass or fail) the per-benchmark percent-delta table is
printed; when $GITHUB_STEP_SUMMARY is set the same table is appended there
as Markdown, so the CI job summary shows the drift of every benchmark, not
just the ones that breached the gate.
"""
import argparse
import glob
import json
import os
import sys


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def benchmarks_by_name(doc: dict) -> dict:
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name and "cpu_time" in bench:
            out[name] = (float(bench["cpu_time"]), bench.get("time_unit", "ns"))
    return out


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--fresh-dir", required=True)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional cpu_time growth (default 0.10)")
    parser.add_argument("--tolerance-for", action="append", default=[],
                        metavar="NAME=FRAC",
                        help="per-benchmark tolerance override, repeatable")
    args = parser.parse_args()

    overrides = {}
    for spec in args.tolerance_for:
        name, _, frac = spec.partition("=")
        if not frac:
            print(f"error: bad --tolerance-for '{spec}' (want NAME=FRAC)",
                  file=sys.stderr)
            return 2
        overrides[name] = float(frac)

    baselines = sorted(glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baselines:
        print(f"error: no BENCH_*.json under {args.baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    rows = []  # (name, fresh_cpu, base_cpu, unit, delta_frac, tol, verdict)
    compared = 0
    for base_path in baselines:
        fname = os.path.basename(base_path)
        fresh_path = os.path.join(args.fresh_dir, fname)
        if not os.path.exists(fresh_path):
            failures.append(f"{fname}: no fresh run (bench binary dropped?)")
            continue
        base_doc = load(base_path)
        fresh_doc = load(fresh_path)
        for label, doc in (("baseline", base_doc), ("fresh", fresh_doc)):
            stamp = doc.get("cmake_build_type")
            if stamp != "Release":
                failures.append(
                    f"{fname}: {label} cmake_build_type is "
                    f"{stamp!r}, not 'Release' -- not comparable")
        base_times = benchmarks_by_name(base_doc)
        fresh_times = benchmarks_by_name(fresh_doc)
        for name, (base_cpu, base_unit) in sorted(base_times.items()):
            if name not in fresh_times:
                failures.append(f"{fname}: {name} missing from fresh run")
                continue
            fresh_cpu, fresh_unit = fresh_times[name]
            if fresh_unit != base_unit:
                failures.append(
                    f"{fname}: {name} time_unit changed "
                    f"({base_unit} -> {fresh_unit}); re-baseline")
                continue
            tol = overrides.get(name, args.tolerance)
            limit = base_cpu * (1.0 + tol)
            ratio = fresh_cpu / base_cpu if base_cpu > 0 else float("inf")
            verdict = "ok" if fresh_cpu <= limit else "REGRESSED"
            rows.append((name, fresh_cpu, base_cpu, base_unit,
                         ratio - 1.0, tol, verdict))
            compared += 1
            if fresh_cpu > limit:
                failures.append(
                    f"{fname}: {name} cpu_time {fresh_cpu:.1f} {base_unit} vs "
                    f"baseline {base_cpu:.1f} {base_unit} "
                    f"(+{(ratio - 1):.0%} > {tol:.0%})")

    # Percent-delta table: negative = faster than baseline. Printed on pass
    # too -- slow drift inside the tolerance band is invisible otherwise.
    if rows:
        width = max(len(name) for name, *_ in rows)
        print(f"{'verdict':>9}  {'benchmark':<{width}} {'fresh':>12} "
              f"{'baseline':>12} {'delta':>8} {'tol':>5}")
        for name, fresh_cpu, base_cpu, unit, delta, tol, verdict in rows:
            print(f"{verdict:>9}  {name:<{width}} {fresh_cpu:>10.1f}{unit} "
                  f"{base_cpu:>10.1f}{unit} {delta:>+7.1%} {tol:>5.0%}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path and rows:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write("### Bench regression gate\n\n")
            fh.write("| benchmark | fresh | baseline | delta | tol | verdict |\n")
            fh.write("|---|---:|---:|---:|---:|---|\n")
            for name, fresh_cpu, base_cpu, unit, delta, tol, verdict in rows:
                marker = "✅" if verdict == "ok" else "❌"
                fh.write(f"| `{name}` | {fresh_cpu:.1f} {unit} "
                         f"| {base_cpu:.1f} {unit} | {delta:+.1%} "
                         f"| {tol:.0%} | {marker} {verdict} |\n")
            fh.write(f"\ncompared {compared} benchmark(s) across "
                     f"{len(baselines)} file(s)\n")

    print(f"compared {compared} benchmark(s) across {len(baselines)} file(s)")
    if failures:
        print(f"\n{len(failures)} regression gate failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
