// air-profile: render the host-profiler artifacts of a profiled flight
// (air-record --profile) as an attribution table, folded flamegraph stacks
// or a Chrome-trace view.
//
// Usage: air-profile [--folded] [--chrome] [--top] [flight_dir | file.json]
//
// The input is either a flight directory (meta.json names the per-module
// profiles plus world_profile.json) or a single *_profile.json written by
// telemetry::profile_to_json. With no mode flag the tool prints one
// attribution table per origin, paths sorted hottest-first.
//
//  --folded  folded stack lines "origin;tick;pal;kernel_dispatch 1234"
//            (value = self ns) for flamegraph.pl / inferno / speedscope.
//  --chrome  a Chrome "X"-event JSON on stdout: one synthetic frame per
//            origin whose nesting mirrors the aggregated call tree (open
//            in Perfetto; widths are total ns, not a timeline).
//  --top     one hot-path line per origin (hottest self-time path).
//
// Exits 2 when no profile rows could be loaded (unprofiled flight or bad
// path) so CI can assert that profiling actually happened.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

using air::util::json::Array;
using air::util::json::Object;
using air::util::json::Value;

namespace {

struct Row {
  std::string path;
  std::string point;
  std::int64_t depth{0};
  std::int64_t calls{0};
  std::int64_t total_ns{0};
  std::int64_t self_ns{0};
  std::int64_t max_ns{0};
  std::int64_t arena_bytes{0};
  std::int64_t heap_allocs{0};
};

struct Profile {
  std::string origin;
  std::int64_t stride{0};
  std::int64_t sampled_ticks{0};
  std::vector<Row> rows;  // preorder, as exported
};

bool load_profile(const std::filesystem::path& file, std::vector<Profile>& out) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "air-profile: cannot read %s\n", file.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = air::util::json::parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "air-profile: %s: parse error: %s\n", file.c_str(),
                 parsed.error->to_string().c_str());
    return false;
  }
  Profile profile;
  if (const Value* meta = parsed.value->find("meta"); meta != nullptr) {
    profile.origin = meta->get_string("origin", file.stem().string());
    profile.stride = meta->get_int("stride", 0);
    profile.sampled_ticks = meta->get_int("sampled_ticks", 0);
  }
  const Value* paths = parsed.value->find("paths");
  if (paths == nullptr || !paths->is_array()) {
    std::fprintf(stderr, "air-profile: %s: no \"paths\" array\n",
                 file.c_str());
    return false;
  }
  for (const Value& v : paths->as_array()) {
    if (!v.is_object()) continue;
    Row row;
    row.path = v.get_string("path", "");
    row.point = v.get_string("point", "");
    row.depth = v.get_int("depth", 0);
    row.calls = v.get_int("calls", 0);
    row.total_ns = v.get_int("total_ns", 0);
    row.self_ns = v.get_int("self_ns", 0);
    row.max_ns = v.get_int("max_ns", 0);
    row.arena_bytes = v.get_int("arena_bytes", 0);
    row.heap_allocs = v.get_int("heap_allocs", 0);
    profile.rows.push_back(std::move(row));
  }
  out.push_back(std::move(profile));
  return true;
}

/// Flight directory: meta.json lists the module profiles; world_profile.json
/// holds the cross-module (epoch/bus) tree.
bool load_flight(const std::filesystem::path& dir, std::vector<Profile>& out) {
  std::ifstream in(dir / "meta.json", std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "air-profile: %s: no meta.json (not a flight dir?)\n",
                 dir.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = air::util::json::parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "air-profile: %s/meta.json: parse error\n",
                 dir.c_str());
    return false;
  }
  bool any = false;
  if (const Value* modules = parsed.value->find("modules");
      modules != nullptr && modules->is_array()) {
    for (const Value& entry : modules->as_array()) {
      const std::string file = entry.get_string("profile", "");
      if (!file.empty() && load_profile(dir / file, out)) any = true;
    }
  }
  const std::string world = parsed.value->get_string("world_profile", "");
  if (!world.empty() && load_profile(dir / world, out)) any = true;
  if (!any) {
    std::fprintf(stderr,
                 "air-profile: %s: no profile artifacts -- was the flight "
                 "recorded with --profile?\n",
                 dir.c_str());
  }
  return any;
}

void print_table(const Profile& profile) {
  std::printf("%s: host profile (%lld sampled ticks, stride %lld)\n",
              profile.origin.c_str(),
              static_cast<long long>(profile.sampled_ticks),
              static_cast<long long>(profile.stride));
  std::printf("  %-44s %10s %12s %9s %9s %9s %8s %6s\n", "path", "calls",
              "total_ns", "mean_ns", "self_ns", "max_ns", "arena_B", "heap");
  std::vector<const Row*> rows;
  rows.reserve(profile.rows.size());
  for (const Row& row : profile.rows) rows.push_back(&row);
  std::stable_sort(rows.begin(), rows.end(), [](const Row* x, const Row* y) {
    return x->total_ns > y->total_ns;
  });
  for (const Row* row : rows) {
    const double mean = row->calls > 0 ? static_cast<double>(row->total_ns) /
                                             static_cast<double>(row->calls)
                                       : 0.0;
    std::printf("  %-44s %10lld %12lld %9.1f %9lld %9lld %8lld %6lld\n",
                row->path.c_str(), static_cast<long long>(row->calls),
                static_cast<long long>(row->total_ns), mean,
                static_cast<long long>(row->self_ns),
                static_cast<long long>(row->max_ns),
                static_cast<long long>(row->arena_bytes),
                static_cast<long long>(row->heap_allocs));
  }
}

/// Folded stacks with the origin as the root frame, so multi-module
/// flamegraphs stay disjoint ("fig8;tick;pal;kernel_dispatch 1234").
void print_folded(const Profile& profile) {
  for (const Row& row : profile.rows) {
    if (row.self_ns <= 0) continue;
    std::printf("%s;%s %lld\n", profile.origin.c_str(), row.path.c_str(),
                static_cast<long long>(row.self_ns));
  }
}

void print_top(const Profile& profile) {
  const Row* hottest = nullptr;
  std::int64_t total = 0;
  for (const Row& row : profile.rows) {
    if (row.depth == 1) total += row.total_ns;
    if (hottest == nullptr || row.self_ns > hottest->self_ns) hottest = &row;
  }
  if (hottest == nullptr) {
    std::printf("%s: no profile data\n", profile.origin.c_str());
    return;
  }
  const double share = total > 0 ? 100.0 * static_cast<double>(hottest->self_ns) /
                                       static_cast<double>(total)
                                 : 0.0;
  std::printf("%s: hot path %s self=%lldns (%.1f%% of %lld sampled ticks)\n",
              profile.origin.c_str(), hottest->path.c_str(),
              static_cast<long long>(hottest->self_ns), share,
              static_cast<long long>(profile.sampled_ticks));
}

/// Chrome-trace view: the aggregated call tree of each origin rendered as
/// one synthetic complete-event ("X") frame at t=0. Children are laid out
/// sequentially inside their parent; widths are total microseconds. This
/// is a cost treemap in trace clothing, not a timeline.
std::string to_chrome(const std::vector<Profile>& profiles) {
  Array events;
  std::int64_t pid = 0;
  for (const Profile& profile : profiles) {
    // cursor[d] = next free timestamp at depth d (inside the current
    // depth-(d-1) frame). Rows arrive in preorder, so a row at depth d
    // opens at cursor[d] and resets cursor[d+1] to its own start.
    std::vector<double> cursor(2, 0.0);
    for (const Row& row : profile.rows) {
      const auto depth = static_cast<std::size_t>(row.depth);
      if (depth == 0 || depth >= cursor.size() + 1) continue;
      if (cursor.size() <= depth + 1) cursor.resize(depth + 2, 0.0);
      const double ts = cursor[depth];
      const double dur = static_cast<double>(row.total_ns) / 1e3;  // us
      Object event;
      event["name"] = Value{row.point};
      event["cat"] = Value{profile.origin};
      event["ph"] = Value{"X"};
      event["ts"] = Value{ts};
      event["dur"] = Value{dur};
      event["pid"] = Value{pid};
      event["tid"] = Value{std::int64_t{0}};
      Object args;
      args["path"] = Value{row.path};
      args["calls"] = Value{row.calls};
      args["max_ns"] = Value{row.max_ns};
      event["args"] = Value{std::move(args)};
      events.push_back(Value{std::move(event)});
      cursor[depth] = ts + dur;
      cursor[depth + 1] = ts;
    }
    Object name;
    name["name"] = Value{"process_name"};
    name["ph"] = Value{"M"};
    name["pid"] = Value{pid};
    Object name_args;
    name_args["name"] = Value{profile.origin};
    name["args"] = Value{std::move(name_args)};
    events.push_back(Value{std::move(name)});
    ++pid;
  }
  Object root;
  root["traceEvents"] = Value{std::move(events)};
  root["displayTimeUnit"] = Value{"ms"};
  return Value{std::move(root)}.dump(2);
}

}  // namespace

int main(int argc, char** argv) {
  bool folded = false;
  bool chrome = false;
  bool top = false;
  std::string input = "flight";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--folded") == 0) {
      folded = true;
    } else if (std::strcmp(argv[i], "--chrome") == 0) {
      chrome = true;
    } else if (std::strcmp(argv[i], "--top") == 0) {
      top = true;
    } else {
      input = argv[i];
    }
  }

  std::vector<Profile> profiles;
  const std::filesystem::path path{input};
  const bool loaded = std::filesystem::is_directory(path)
                          ? load_flight(path, profiles)
                          : load_profile(path, profiles);
  std::size_t rows = 0;
  for (const Profile& profile : profiles) rows += profile.rows.size();
  if (!loaded || rows == 0) {
    std::fprintf(stderr, "air-profile: no profile rows in %s\n",
                 input.c_str());
    return 2;
  }

  if (chrome) {
    std::fputs(to_chrome(profiles).c_str(), stdout);
    return 0;
  }
  bool first = true;
  for (const Profile& profile : profiles) {
    if (folded) {
      print_folded(profile);
    } else if (top) {
      print_top(profile);
    } else {
      if (!first) std::printf("\n");
      print_table(profile);
    }
    first = false;
  }
  return 0;
}
