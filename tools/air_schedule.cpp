// air-schedule: the schedulability service CLI.
//
// Batch front-end to model::BatchAnalyzer: ingest thousands of candidate
// configurations (NDJSON lines, or generated), analyse them against the
// paper's conditions (eqs. (8), (14), (19)-(23)) with supply-table
// memoisation and worker fan-out, and emit a deterministic verdict stream
// (NDJSON, byte-identical for any --workers value). Optionally close the
// loop: fly a sample of the verdicts in the simulator and check the
// differential oracle (analysis-schedulable <=> zero deadline misses).
//
// Usage:
//   air-schedule [--in <file.jsonl>|-] [--generate <count>] [--seed <n>]
//                [--distinct <n>] [--overload <frac>] [--infeasible <frac>]
//                [--workers <n>] [--no-memoise] [--out <file>]
//                [--metrics <file>] [--stats]
//                [--differential] [--accepted <n>] [--rejected <n>]
//                [--switched-bus] [--reproducers <file.jsonl>]
//                [--selftest]
//
// Exit codes: 0 ok; 1 usage/IO failure; 2 candidate parse errors;
// 3 differential divergence detected (reproducers written when asked);
// with --selftest, 0 = mutation caught (pipeline works), 3 = not caught.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "config/candidates.hpp"
#include "model/batch.hpp"
#include "system/flight_validate.hpp"
#include "telemetry/export.hpp"

namespace {

bool read_input(const std::string& path, std::string& out) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    out = buffer.str();
    return true;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "air-schedule: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool write_output(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) {
    std::fprintf(stderr, "air-schedule: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: air-schedule [--in <file.jsonl>|-] [--generate <count>]\n"
      "                    [--seed <n>] [--distinct <n>] [--overload <f>]\n"
      "                    [--infeasible <f>] [--workers <n>]\n"
      "                    [--no-memoise] [--out <file>] [--metrics <file>]\n"
      "                    [--stats] [--differential] [--accepted <n>]\n"
      "                    [--rejected <n>] [--switched-bus]\n"
      "                    [--reproducers <file.jsonl>] [--selftest]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  std::string metrics_path;
  std::string reproducers_path;
  air::model::CandidateSpec spec;
  bool generate = false;
  bool stats = false;
  bool differential = false;
  bool selftest = false;
  air::model::BatchOptions batch_options;
  air::system::DifferentialOptions diff_options;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "air-schedule: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--in") == 0) {
      in_path = next("--in");
    } else if (std::strcmp(argv[i], "--generate") == 0) {
      generate = true;
      spec.count = static_cast<std::size_t>(
          std::strtoull(next("--generate"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      spec.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--distinct") == 0) {
      spec.distinct_psts = static_cast<std::size_t>(
          std::strtoull(next("--distinct"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      spec.overload_fraction = std::strtod(next("--overload"), nullptr);
    } else if (std::strcmp(argv[i], "--infeasible") == 0) {
      spec.infeasible_fraction = std::strtod(next("--infeasible"), nullptr);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      batch_options.workers = static_cast<std::size_t>(
          std::strtoull(next("--workers"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-memoise") == 0) {
      batch_options.memoise = false;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = next("--metrics");
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--differential") == 0) {
      differential = true;
    } else if (std::strcmp(argv[i], "--accepted") == 0) {
      diff_options.max_accepted = static_cast<std::size_t>(
          std::strtoull(next("--accepted"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--rejected") == 0) {
      diff_options.max_rejected = static_cast<std::size_t>(
          std::strtoull(next("--rejected"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--switched-bus") == 0) {
      diff_options.switched_bus = true;
    } else if (std::strcmp(argv[i], "--reproducers") == 0) {
      reproducers_path = next("--reproducers");
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest = true;
    } else {
      usage();
      return 1;
    }
  }

  if (selftest) {
    const auto report = air::system::schedulability_selftest();
    std::fputs(report.to_text().c_str(), stderr);
    return report.caught() ? 0 : 3;
  }

  // --- ingest ---
  std::vector<air::model::Candidate> candidates;
  if (generate) {
    candidates = air::model::generate_candidates(spec);
  } else if (!in_path.empty()) {
    std::string text;
    if (!read_input(in_path, text)) return 1;
    air::config::CandidateStream stream =
        air::config::parse_candidates(text);
    for (const std::string& err : stream.errors) {
      std::fprintf(stderr, "air-schedule: %s\n", err.c_str());
    }
    if (!stream.ok()) return 2;
    candidates = std::move(stream.candidates);
  } else {
    usage();
    return 1;
  }

  // --- analyse ---
  air::model::BatchAnalyzer analyzer(batch_options);
  const auto verdicts = analyzer.analyze(candidates);

  std::string out;
  for (const auto& v : verdicts) {
    out += v.to_ndjson();
    out += '\n';
  }
  if (!write_output(out_path, out)) return 1;

  if (stats) {
    const auto& s = analyzer.stats();
    std::fprintf(stderr,
                 "air-schedule: %llu configs (%llu schedulable, %llu "
                 "unschedulable, %llu infeasible); supply cache: %llu "
                 "lookups, %llu hits, %llu misses, %zu entries\n",
                 static_cast<unsigned long long>(s.analyzed),
                 static_cast<unsigned long long>(s.schedulable),
                 static_cast<unsigned long long>(s.unschedulable),
                 static_cast<unsigned long long>(s.infeasible),
                 static_cast<unsigned long long>(s.cache.lookups),
                 static_cast<unsigned long long>(s.cache.hits),
                 static_cast<unsigned long long>(s.cache.misses),
                 s.cache.entries);
  }
  if (!metrics_path.empty()) {
    air::telemetry::MetricsRegistry registry;
    analyzer.publish(registry);
    if (!write_output(metrics_path,
                      air::telemetry::to_json(registry.snapshot(0)))) {
      return 1;
    }
  }

  // --- differential flight validation ---
  if (differential) {
    const auto report =
        air::system::validate_differential(candidates, verdicts,
                                           diff_options);
    std::fputs(report.to_text().c_str(), stderr);
    if (!report.ok()) {
      if (!reproducers_path.empty()) {
        std::string repro;
        for (std::uint64_t id : report.divergent_ids) {
          for (const auto& c : candidates) {
            if (c.id == id) {
              repro += air::config::candidate_to_jsonl(c);
              repro += '\n';
              break;
            }
          }
        }
        if (!write_output(reproducers_path, repro)) return 1;
      }
      return 3;
    }
  }
  return 0;
}
