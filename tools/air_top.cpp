// air-top: live flight deck over a streaming NDJSON health file.
//
// Consumes the stream the online observability plane writes (one compact
// JSON object per line: {"type":"digest",...} window summaries and
// {"type":"health",...} watchdog breaches -- see src/telemetry/digest.hpp)
// and renders a per-source deck: the latest window's partition table (busy
// ticks, dispatches, deadline misses, EWMA miss rate, slack percentiles),
// the bus-station table for the "bus" source, and the tail of the health
// event log. With --follow it re-reads and re-renders until interrupted,
// which turns `air-record --health` plus `air-top --follow` into a live
// view of a flying mission.
//
// Usage: air-top [--follow] [--interval-ms N] [--fail-on-breach]
//                [--tail N] [--profile FILE] [health.ndjson]
//
// --profile FILE adds a hot-path line per origin from a host-profile
// artifact (a *_profile.json written by air-record --profile, or a flight
// directory containing them) -- where the recorded flight's host time went.
//
// Exit codes: 0 = rendered (no breach, or --fail-on-breach unset),
//             2 = --fail-on-breach and the stream contains a health event,
//             1 = usage or I/O error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

using air::util::json::Value;

namespace {

struct SourceDeck {
  Value last_digest;                // most recent digest line of the source
  std::uint64_t windows{0};         // digest lines seen
  std::vector<Value> health;        // every health line, in stream order
};

struct Deck {
  // std::map: deterministic source ordering in the rendered output.
  std::map<std::string, SourceDeck> sources;
  std::size_t lines{0};
  std::size_t bad_lines{0};
};

bool load(const std::string& path, Deck& deck) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  deck = Deck{};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++deck.lines;
    air::util::json::ParseResult parsed = air::util::json::parse(line);
    if (!parsed.ok() || !parsed.value->is_object()) {
      ++deck.bad_lines;
      continue;
    }
    Value value = std::move(*parsed.value);
    const std::string type = value.get_string("type", "");
    const std::string source = value.get_string("source", "?");
    SourceDeck& sd = deck.sources[source];
    if (type == "digest") {
      sd.last_digest = std::move(value);
      ++sd.windows;
    } else if (type == "health") {
      sd.health.push_back(std::move(value));
    } else {
      ++deck.bad_lines;
    }
  }
  return true;
}

std::string quantiles(const Value& histogram) {
  if (histogram.get_int("count", 0) == 0) return "-";
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%lld/%lld/%lld",
                static_cast<long long>(histogram.get_int("p50", -1)),
                static_cast<long long>(histogram.get_int("p95", -1)),
                static_cast<long long>(histogram.get_int("p99", -1)));
  return buffer;
}

void render_source(const std::string& name, const SourceDeck& sd) {
  const Value& d = sd.last_digest;
  std::printf("== %s  windows=%llu  breaches=%zu", name.c_str(),
              static_cast<unsigned long long>(sd.windows), sd.health.size());
  if (sd.windows > 0) {
    std::printf("  window %lld [%lld,%lld)",
                static_cast<long long>(d.get_int("window", -1)),
                static_cast<long long>(d.get_int("start", -1)),
                static_cast<long long>(d.get_int("end", -1)));
  }
  std::printf("\n");
  if (sd.windows == 0) return;

  if (const Value* partitions = d.find("partitions")) {
    std::printf("  %-4s %6s %6s %6s %6s %8s %14s\n", "part", "busy",
                "disp", "miss", "hm", "ewma", "slack p50/95/99");
    for (const Value& row : partitions->as_array()) {
      const double ewma =
          static_cast<double>(row.get_int("miss_rate_ewma_x65536", 0)) /
          65536.0;
      std::string slack = "-";
      if (const Value* h = row.find("deadline_slack")) slack = quantiles(*h);
      std::printf("  P%-3lld %6lld %6lld %6lld %6lld %8.3f %14s\n",
                  static_cast<long long>(row.get_int("partition", -1)),
                  static_cast<long long>(row.get_int("busy", 0)),
                  static_cast<long long>(row.get_int("dispatches", 0)),
                  static_cast<long long>(row.get_int("deadline_misses", 0)),
                  static_cast<long long>(row.get_int("hm_errors", 0)), ewma,
                  slack.c_str());
    }
    std::printf("  ipc: messages=%lld bytes=%lld drops=%lld\n",
                static_cast<long long>(d.get_int("ipc_messages", 0)),
                static_cast<long long>(d.get_int("ipc_bytes", 0)),
                static_cast<long long>(d.get_int("ipc_drops", 0)));
  }
  if (const Value* stations = d.find("stations")) {
    std::printf("  %-8s %10s %12s %8s\n", "station", "sent", "delivered",
                "backlog");
    for (const Value& row : stations->as_array()) {
      std::printf("  M%-7lld %10lld %12lld %8lld\n",
                  static_cast<long long>(row.get_int("module", -1)),
                  static_cast<long long>(row.get_int("frames_sent", 0)),
                  static_cast<long long>(row.get_int("frames_delivered", 0)),
                  static_cast<long long>(row.get_int("backlog", 0)));
    }
    std::printf("  bus: sent=%lld delivered=%lld backlog=%lld\n",
                static_cast<long long>(d.get_int("bus_frames_sent", 0)),
                static_cast<long long>(d.get_int("bus_frames_delivered", 0)),
                static_cast<long long>(d.get_int("bus_backlog", 0)));
  }
  std::printf("  telemetry: spans_dropped=%lld trace_dropped=%lld "
              "critical=%lld\n",
              static_cast<long long>(d.get_int("spans_dropped", 0)),
              static_cast<long long>(d.get_int("trace_dropped", 0)),
              static_cast<long long>(d.get_int("trace_dropped_critical", 0)));
}

std::size_t render(const Deck& deck, std::size_t tail) {
  std::size_t breaches = 0;
  for (const auto& [name, sd] : deck.sources) {
    render_source(name, sd);
    breaches += sd.health.size();
  }
  if (breaches > 0) {
    std::printf("-- health events (%zu total, last %zu per source) --\n",
                breaches, tail);
    for (const auto& [name, sd] : deck.sources) {
      const std::size_t first =
          sd.health.size() > tail ? sd.health.size() - tail : 0;
      for (std::size_t i = first; i < sd.health.size(); ++i) {
        const Value& e = sd.health[i];
        std::printf("  [%s] @%lld %s partition=%lld value=%lld "
                    "threshold=%lld cause=%lld  %s\n",
                    name.c_str(),
                    static_cast<long long>(e.get_int("tick", -1)),
                    e.get_string("watchdog", "?").c_str(),
                    static_cast<long long>(e.get_int("partition", -1)),
                    static_cast<long long>(e.get_int("value", 0)),
                    static_cast<long long>(e.get_int("threshold", 0)),
                    static_cast<long long>(e.get_int("cause_span", 0)),
                    e.get_string("detail", "").c_str());
      }
    }
  }
  if (deck.bad_lines > 0) {
    std::printf("-- %zu unparseable line(s) skipped --\n", deck.bad_lines);
  }
  return breaches;
}

/// Hot-path lines from host-profile artifacts: for each profile document,
/// the path with the largest self time. Accepts a single *_profile.json or
/// a flight directory (renders every profile meta.json names).
void render_profile_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::printf("  hot: cannot read %s\n", path.c_str());
    return;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  air::util::json::ParseResult parsed = air::util::json::parse(text);
  if (!parsed.ok()) {
    std::printf("  hot: %s: parse error\n", path.c_str());
    return;
  }
  std::string origin = "?";
  if (const Value* meta = parsed.value->find("meta")) {
    origin = meta->get_string("origin", "?");
  }
  const Value* paths = parsed.value->find("paths");
  if (paths == nullptr || !paths->is_array() || paths->as_array().empty()) {
    std::printf("  hot [%s]: no profile data\n", origin.c_str());
    return;
  }
  const Value* hottest = nullptr;
  for (const Value& row : paths->as_array()) {
    if (hottest == nullptr ||
        row.get_int("self_ns", 0) > hottest->get_int("self_ns", 0)) {
      hottest = &row;
    }
  }
  std::printf("  hot [%s]: %s self=%lldns calls=%lld max=%lldns\n",
              origin.c_str(), hottest->get_string("path", "?").c_str(),
              static_cast<long long>(hottest->get_int("self_ns", 0)),
              static_cast<long long>(hottest->get_int("calls", 0)),
              static_cast<long long>(hottest->get_int("max_ns", 0)));
}

void render_profiles(const std::string& path) {
  std::printf("-- host profile --\n");
  namespace fs = std::filesystem;
  if (!fs::is_directory(fs::path{path})) {
    render_profile_file(path);
    return;
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(fs::path{path})) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 13 &&
        name.compare(name.size() - 13, 13, "_profile.json") == 0) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::printf("  hot: no *_profile.json in %s\n", path.c_str());
    return;
  }
  for (const std::string& file : files) render_profile_file(file);
}

int usage() {
  std::fprintf(stderr,
               "usage: air-top [--follow] [--interval-ms N] "
               "[--fail-on-breach] [--tail N] [--profile FILE] "
               "[health.ndjson]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  bool fail_on_breach = false;
  long interval_ms = 500;
  std::size_t tail = 8;
  std::string path = "flight/health.ndjson";
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--follow") == 0) {
      follow = true;
    } else if (std::strcmp(arg, "--fail-on-breach") == 0) {
      fail_on_breach = true;
    } else if (std::strcmp(arg, "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
      if (interval_ms <= 0) return usage();
    } else if (std::strcmp(arg, "--tail") == 0 && i + 1 < argc) {
      tail = static_cast<std::size_t>(std::strtol(argv[++i], nullptr, 10));
      if (tail == 0) return usage();
    } else if (std::strcmp(arg, "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }

  std::size_t breaches = 0;
  for (;;) {
    Deck deck;
    if (!load(path, deck)) {
      std::fprintf(stderr, "air-top: cannot read %s\n", path.c_str());
      return 1;
    }
    if (follow) std::printf("\033[2J\033[H");  // clear, home
    breaches = render(deck, tail);
    if (!profile_path.empty()) render_profiles(profile_path);
    std::fflush(stdout);
    if (!follow) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return fail_on_breach && breaches > 0 ? 2 : 0;
}
