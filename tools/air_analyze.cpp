// air-analyze: post-mortem flight-data analyzer.
//
// Loads the artifacts a recording left behind (see tools/air_record.cpp for
// the manifest format), runs telemetry::analyze() and writes:
//   <dir>/chrome_trace.json  -- timeline with windows, jobs and message
//                               flows (open in Perfetto / chrome://tracing)
//   <dir>/analysis.txt       -- utilisation/jitter/slack tables, flow
//                               connectivity, anomalies with blame chains
//
// Usage:
//   air-analyze <dir> [--baseline <metrics.json>] [--trace-out <file>]
//               [--report-out <file>] [--require-cross-module-flow]
//
// Exit codes: 0 ok; 1 IO/parse failure; 2 analysis gate failed (a deadline
// miss beyond the first carries no root-cause chain, or -- with
// --require-cross-module-flow -- no message flow crossed the bus).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/analysis.hpp"
#include "util/json.hpp"

namespace {

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "air-analyze: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) {
    std::fprintf(stderr, "air-analyze: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir_arg;
  std::string baseline_path;
  std::string trace_out;
  std::string report_out;
  bool require_cross_module = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--report-out") == 0 && i + 1 < argc) {
      report_out = argv[++i];
    } else if (std::strcmp(argv[i], "--require-cross-module-flow") == 0) {
      require_cross_module = true;
    } else {
      dir_arg = argv[i];
    }
  }
  if (dir_arg.empty()) {
    std::fprintf(stderr,
                 "usage: air-analyze <recording-dir> [--baseline <metrics."
                 "json>] [--trace-out <file>] [--report-out <file>] "
                 "[--require-cross-module-flow]\n");
    return 1;
  }
  const std::filesystem::path dir{dir_arg};

  std::string meta_text;
  if (!read_file(dir / "meta.json", meta_text)) return 1;
  const air::util::json::ParseResult meta = air::util::json::parse(meta_text);
  if (!meta.ok()) {
    std::fprintf(stderr, "air-analyze: meta.json: %s\n",
                 meta.error->to_string().c_str());
    return 1;
  }

  air::telemetry::AnalysisInput input;
  std::string error;
  const air::util::json::Value* modules = meta.value->find("modules");
  if (modules == nullptr || !modules->is_array()) {
    std::fprintf(stderr, "air-analyze: meta.json lists no modules\n");
    return 1;
  }
  for (const air::util::json::Value& entry : modules->as_array()) {
    const std::string name = entry.get_string("name", "module");
    std::string trace_json, metrics_json, spans_json;
    if (!read_file(dir / entry.get_string("trace", ""), trace_json) ||
        !read_file(dir / entry.get_string("metrics", ""), metrics_json) ||
        !read_file(dir / entry.get_string("spans", ""), spans_json)) {
      return 1;
    }
    if (!input.add_module(name, trace_json, metrics_json, spans_json,
                          &error)) {
      std::fprintf(stderr, "air-analyze: %s: %s\n", name.c_str(),
                   error.c_str());
      return 1;
    }
  }
  const std::string bus_file = meta.value->get_string("bus_spans", "");
  if (!bus_file.empty()) {
    std::string bus_json;
    if (!read_file(dir / bus_file, bus_json)) return 1;
    if (!input.set_bus_spans(bus_json, &error)) {
      std::fprintf(stderr, "air-analyze: bus spans: %s\n", error.c_str());
      return 1;
    }
  }
  if (!baseline_path.empty()) {
    std::string baseline_json;
    if (!read_file(baseline_path, baseline_json)) return 1;
    if (!input.set_baseline(baseline_json, &error)) {
      std::fprintf(stderr, "air-analyze: baseline: %s\n", error.c_str());
      return 1;
    }
  }

  const air::telemetry::AnalysisResult result =
      air::telemetry::analyze(input);
  const std::filesystem::path trace_path =
      trace_out.empty() ? dir / "chrome_trace.json"
                        : std::filesystem::path{trace_out};
  const std::filesystem::path report_path =
      report_out.empty() ? dir / "analysis.txt"
                         : std::filesystem::path{report_out};
  if (!write_file(trace_path, result.chrome_trace) ||
      !write_file(report_path, result.report)) {
    return 1;
  }
  std::fputs(result.report.c_str(), stdout);
  std::printf("\nwrote %s and %s\n", trace_path.c_str(), report_path.c_str());

  if (result.unchained_misses > 0) {
    std::fprintf(stderr,
                 "air-analyze: FAIL: %d deadline miss(es) beyond the first "
                 "carry no root-cause chain\n",
                 result.unchained_misses);
    return 2;
  }
  if (require_cross_module && result.cross_module_flows == 0) {
    std::fprintf(stderr,
                 "air-analyze: FAIL: no message flow crosses the bus\n");
    return 2;
  }
  if (result.broken_flows > 0) {
    std::fprintf(stderr,
                 "air-analyze: FAIL: %d flow(s) have a receive leg with no "
                 "send leg (broken context propagation)\n",
                 result.broken_flows);
    return 2;
  }
  return 0;
}
