// air-record: fly the paper's Fig. 8 prototype mission and write the flight
// artifacts tools/air-analyze ingests.
//
// The mission is the Sect. 6 scenario extended over the TDMA bus: module 0
// runs the four-partition Fig. 8 prototype (faulty process injected on P1,
// mode switch chi_1 -> chi_2 at t=500, five MTFs of flight), module 1 is a
// ground-segment computer whose archiver consumes the payload's science
// frames remotely -- so the recording contains at least one message flow
// that crosses the bus.
//
// Usage: air-record [--no-warp] [--clean] [--health] [--fail-on-breach]
//                   [--profile] [--status] [--network <file.json>]
//                   [out_dir]  (default: "flight")
//
// --network loads the bus topology (switched/flat, virtual links) from an
// integrator network file (config::load_network_config_file schema) instead
// of the built-in flat two-station default.
// --clean omits the faulty process (the mission then has a zero-breach SLO:
// the CI flight-health job asserts it). --health flies with the online
// observability plane enabled on both modules and the bus, streaming
// windowed digests and watchdog breaches to <out_dir>/health.ndjson -- the
// file tools/air-top renders. --profile flies with the hierarchical host
// profiler at stride 1 (exact capture; forces per-tick stepping) and writes
// <name>_profile.json per module plus world_profile.json -- the artifacts
// tools/air-profile renders. --fail-on-breach exits 2 when any watchdog
// fired. --status skips the mission: it prints the binary's build type,
// a one-line ticks/s self-measurement (a wall-clocked clean Fig. 8 flight)
// and the pooled-memory counters the zero-allocation claim rests on, so a
// shell can tell at a glance whether its timings mean anything
// (DESIGN.md §11-§12).
//
// Writes per module: <name>_trace.json, <name>_metrics.json,
// <name>_spans.json; plus bus_spans.json and meta.json (the manifest
// air-analyze loads).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "config/fig8.hpp"
#include "config/loader.hpp"
#include "ipc/payload.hpp"
#include "system/build_info.hpp"
#include "system/world.hpp"
#include "telemetry/export.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/online.hpp"
#include "telemetry/spans.hpp"
#include "util/json.hpp"
#include "util/trace_export.hpp"

using namespace air;

namespace {

system::ModuleConfig ground_module() {
  system::ModuleConfig config;
  config.id = ModuleId{1};
  config.name = "ground";

  system::PartitionConfig ground;
  ground.name = "GROUND";
  ground.queuing_ports.push_back(
      {"SCI_IN", ipc::PortDirection::kDestination, 64, 16});
  system::ProcessConfig archiver;
  archiver.attrs.name = "archiver";
  archiver.attrs.priority = 10;
  archiver.attrs.script = pos::ScriptBuilder{}
                              .queuing_receive(0)
                              .log("science frame archived")
                              .build();
  ground.processes.push_back(std::move(archiver));
  config.partitions.push_back(std::move(ground));

  model::Schedule schedule;
  schedule.id = ScheduleId{0};
  schedule.mtf = scenarios::kFig8Mtf;
  schedule.requirements = {
      {PartitionId{0}, scenarios::kFig8Mtf, scenarios::kFig8Mtf}};
  schedule.windows = {{PartitionId{0}, 0, scenarios::kFig8Mtf}};
  config.schedules = {schedule};
  return config;
}

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) {
    std::fprintf(stderr, "air-record: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

// --status: say which tree this binary came from and how fast it actually
// ticks here, in one line each. The self-measurement flies a clean Fig. 8
// module (warp off, so every tick is executed) for a fixed tick budget and
// wall-clocks it -- crude, but enough to spot a debug binary (an order of
// magnitude slower) or a loaded host at a glance.
int print_status() {
  std::printf("air-record: build %s%s\n", system::build_type(),
              system::lto_build() ? " +lto" : "");
  constexpr Ticks kTicks = 20 * scenarios::kFig8Mtf;
  system::Module module(
      scenarios::fig8_config({.with_faulty_process = false}));
  module.set_time_warp(false);
  const auto start = std::chrono::steady_clock::now();
  module.run(kTicks);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  const double rate = elapsed > 0.0 ? static_cast<double>(kTicks) / elapsed
                                    : 0.0;
  std::printf(
      "air-record: self-measure %llu ticks in %.1f ms -> %.2fM ticks/s "
      "(clean fig8, warp off)%s\n",
      static_cast<unsigned long long>(kTicks), elapsed * 1e3, rate / 1e6,
      system::release_build()
          ? ""
          : "  [non-Release: not comparable to Release baselines]");
  const ipc::Payload::PoolStats pool = ipc::Payload::pool_stats();
  std::printf(
      "air-record: payload pool heap_allocs=%llu reuses=%llu returns=%llu "
      "free=%zu\n",
      static_cast<unsigned long long>(pool.heap_allocs),
      static_cast<unsigned long long>(pool.pool_reuses),
      static_cast<unsigned long long>(pool.pool_returns), pool.free_blocks);
  const telemetry::StringArena::Stats& arena = module.arena().stats();
  std::printf(
      "air-record: label arena symbols=%zu blocks=%zu bytes=%zu "
      "high_water=%zu hits=%llu misses=%llu\n",
      arena.symbols, arena.blocks, arena.bytes_used, arena.high_water,
      static_cast<unsigned long long>(arena.hits),
      static_cast<unsigned long long>(arena.misses));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool warp = true;
  bool clean = false;
  bool health = false;
  bool profile = false;
  bool fail_on_breach = false;
  std::string network_file;
  std::string out_dir = "flight";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-warp") == 0) {
      warp = false;
    } else if (std::strcmp(argv[i], "--clean") == 0) {
      clean = true;
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--fail-on-breach") == 0) {
      fail_on_breach = true;
    } else if (std::strcmp(argv[i], "--status") == 0) {
      return print_status();
    } else if (std::strcmp(argv[i], "--network") == 0 && i + 1 < argc) {
      network_file = argv[++i];
    } else {
      out_dir = argv[i];
    }
  }

  // Default network: flat broadcast sized for the two-station mission.
  config::NetworkConfig network{
      {.slot_length = 10, .frames_per_slot = 2, .propagation_delay = 2}, {}};
  if (!network_file.empty()) {
    config::NetworkLoadResult loaded =
        config::load_network_config_file(network_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "air-record: %s: %s\n", network_file.c_str(),
                   loaded.error.c_str());
      return 1;
    }
    network = std::move(*loaded.config);
  }

  const std::filesystem::path dir{out_dir};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "air-record: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  // Online observability: window 500 divides the 7000-tick mission exactly,
  // so the last window closes on the final tick and the stream covers the
  // whole flight.
  telemetry::OnlineOptions online;
  online.enabled = true;
  online.window = 500;

  // Module 0: the Fig. 8 prototype, with the payload's science channel
  // additionally fanning out to the ground module over the bus.
  system::ModuleConfig fig8 =
      scenarios::fig8_config({.with_faulty_process = !clean});
  fig8.id = ModuleId{0};
  for (ipc::ChannelConfig& channel : fig8.channels) {
    if (channel.kind == ipc::ChannelKind::kQueuing) {
      channel.remote_destinations.push_back(
          {ModuleId{1}, PartitionId{0}, "SCI_IN"});
    }
  }
  system::ModuleConfig ground_config = ground_module();
  if (health) {
    fig8.telemetry.online = online;
    ground_config.telemetry.online = online;
  }
  if (profile) {
    // Stride 1: exact offline capture (DESIGN.md §12). The profiler forces
    // per-tick stepping, so the recording is slower but fully attributed.
    fig8.telemetry.profiler_enabled = true;
    fig8.telemetry.profiler_stride = 1;
    ground_config.telemetry.profiler_enabled = true;
    ground_config.telemetry.profiler_stride = 1;
  }

  system::World world(network.bus);
  for (const net::VirtualLinkConfig& vl : network.virtual_links) {
    world.bus().define_virtual_link(vl);
  }
  system::Module& prototype = world.add_module(std::move(fig8));
  system::Module& ground = world.add_module(std::move(ground_config));
  prototype.set_time_warp(warp);
  ground.set_time_warp(warp);
  if (profile) world.enable_profiler(1);

  std::ofstream health_file;
  if (health) {
    health_file.open(dir / "health.ndjson", std::ios::binary);
    if (!health_file) {
      std::fprintf(stderr, "air-record: cannot write %s\n",
                   (dir / "health.ndjson").c_str());
      return 1;
    }
    const auto sink = [&health_file](const std::string& line) {
      health_file << line;
    };
    prototype.online()->set_sink(sink);
    ground.online()->set_sink(sink);
    world.enable_online(online);
    world.bus_plane()->set_sink(sink);
  }

  // Sect. 6 mission: inject the faulty process on P1 (unless --clean), fly
  // 500 ticks under chi_1, request the switch to chi_2, fly five more major
  // time frames.
  if (!clean) {
    prototype.start_process_by_name(prototype.partition_id("AOCS"),
                                    scenarios::kFaultyProcessName);
  }
  world.run(500);
  (void)prototype.apex(prototype.partition_id("AOCS"))
      .set_module_schedule(ScheduleId{1});
  world.run(5 * scenarios::kFig8Mtf);

  util::json::Array modules;
  for (std::size_t i = 0; i < world.module_count(); ++i) {
    system::Module& module = world.module(i);
    const std::string& name = module.config().name;
    const telemetry::MetricsSnapshot snapshot = module.metrics_snapshot();
    if (!write_file(dir / (name + "_trace.json"),
                    util::to_json(module.trace())) ||
        !write_file(dir / (name + "_metrics.json"),
                    telemetry::to_json(snapshot)) ||
        !write_file(dir / (name + "_spans.json"),
                    telemetry::spans_to_json(module.spans()))) {
      return 1;
    }
    util::json::Object entry;
    entry["name"] = util::json::Value{name};
    entry["trace"] = util::json::Value{name + "_trace.json"};
    entry["metrics"] = util::json::Value{name + "_metrics.json"};
    entry["spans"] = util::json::Value{name + "_spans.json"};
    if (profile) {
      if (!write_file(dir / (name + "_profile.json"),
                      telemetry::profile_to_json(module.profiler(), name))) {
        return 1;
      }
      entry["profile"] = util::json::Value{name + "_profile.json"};
    }
    modules.push_back(util::json::Value{std::move(entry)});
  }
  if (profile &&
      !write_file(dir / "world_profile.json",
                  telemetry::profile_to_json(world.profiler(), "world"))) {
    return 1;
  }
  if (!write_file(dir / "bus_spans.json",
                  telemetry::spans_to_json(world.bus_spans()))) {
    return 1;
  }
  util::json::Object meta;
  meta["mission"] = util::json::Value{clean ? "fig8+ground (clean)"
                                            : "fig8+ground"};
  meta["modules"] = util::json::Value{std::move(modules)};
  meta["bus_spans"] = util::json::Value{"bus_spans.json"};
  if (health) meta["health"] = util::json::Value{"health.ndjson"};
  if (profile) meta["world_profile"] = util::json::Value{"world_profile.json"};
  if (!write_file(dir / "meta.json", util::json::Value{std::move(meta)}.dump(2))) {
    return 1;
  }

  std::printf("%s%s\n%s\nrecorded %zu+%zu spans (+%zu bus) to %s\n",
              world.status_report().c_str(),
              prototype.status_report().c_str(),
              ground.status_report().c_str(),
              static_cast<std::size_t>(prototype.spans().recorded_spans()),
              static_cast<std::size_t>(ground.spans().recorded_spans()),
              static_cast<std::size_t>(world.bus_spans().recorded_spans()),
              dir.c_str());

  std::size_t breaches = 0;
  if (health) {
    health_file.close();
    breaches = prototype.online()->events().size() +
               ground.online()->events().size() +
               world.bus_plane()->events().size();
    std::printf("health: %zu watchdog breach(es) streamed to %s\n", breaches,
                (dir / "health.ndjson").c_str());
  }
  if (fail_on_breach && breaches > 0) {
    std::fprintf(stderr, "air-record: watchdog breach on a %s flight\n",
                 clean ? "clean" : "faulty");
    return 2;
  }
  return 0;
}
