// air-faultcamp: deterministic fault-injection campaign against the Fig. 8
// prototype, with system-wide containment oracles.
//
// Sweeps seeds (each a reproducible FaultPlan: memory upsets, rogue writes,
// clock/interrupt anomalies, process overruns, stuck processes, schedule
// storms, bus frame faults), flies every plan against a clean reference run
// and checks the spatial / temporal / HM / liveness containment oracles.
// Breached seeds are shrunk to a minimal reproducer plan and written to the
// output directory.
//
// Usage:
//   air-faultcamp [--seeds N] [--first-seed S] [--mtfs M] [--weaken-hm]
//                 [--workers W] [--no-world] [--out DIR] [--quiet]
//                 [--watchdog-selftest]
//
// --watchdog-selftest skips the sweep and instead verifies the online
// observability plane end to end: a clean flight must stay silent, and a
// single forced deadline miss must light the deadline watchdog on the
// target partition with a causal span link.
//
// Exit codes: 0 = all seeds contained, 2 = containment breach found,
//             1 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fi/campaign.hpp"

using namespace air;

namespace {

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = value;
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: air-faultcamp [--seeds N] [--first-seed S] [--mtfs M]\n"
      "                     [--weaken-hm] [--workers W] [--no-world]\n"
      "                     [--out DIR] [--quiet] [--watchdog-selftest]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fi::CampaignOptions options;
  options.verbose = true;
  bool watchdog_selftest = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::uint64_t value = 0;
    if (std::strcmp(arg, "--seeds") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], value)) return usage();
      options.seeds = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--first-seed") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], value)) return usage();
      options.first_seed = value;
    } else if (std::strcmp(arg, "--mtfs") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], value) || value == 0) return usage();
      options.mtfs = static_cast<Ticks>(value);
    } else if (std::strcmp(arg, "--workers") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], value)) return usage();
      options.workers = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--weaken-hm") == 0) {
      options.weaken_hm = true;
    } else if (std::strcmp(arg, "--no-world") == 0) {
      options.world_missions = false;
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      options.out_dir = argv[++i];
    } else if (std::strcmp(arg, "--quiet") == 0) {
      options.verbose = false;
    } else if (std::strcmp(arg, "--watchdog-selftest") == 0) {
      watchdog_selftest = true;
    } else {
      return usage();
    }
  }

  if (watchdog_selftest) {
    const std::vector<fi::Breach> failures = fi::watchdog_selftest();
    if (failures.empty()) {
      std::printf("air-faultcamp: watchdog self-test passed (clean flight "
                  "silent, forced miss detected and causally linked)\n");
      return 0;
    }
    for (const fi::Breach& failure : failures) {
      std::printf("air-faultcamp: [%s] %s\n", failure.oracle.c_str(),
                  failure.detail.c_str());
    }
    return 2;
  }

  const fi::CampaignResult result = fi::run_campaign(options);
  std::printf(
      "air-faultcamp: %zu seed(s), %zu injection(s) planned, %zu breached "
      "(%s config)\n",
      result.seeds_run, result.injections_applied, result.failures.size(),
      options.weaken_hm ? "weakened" : "stock");
  for (const fi::SeedResult& failure : result.failures) {
    std::printf("%s\n", failure.report.c_str());
  }
  if (!result.failures.empty() && !options.out_dir.empty()) {
    std::printf("reproducers written to %s\n", options.out_dir.c_str());
  }
  return result.breached() ? 2 : 0;
}
